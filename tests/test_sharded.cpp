// The sharded engine's merge layer and rebalancing: cross-shard cycle
// classes collapse to one global class, reconciliation is O(dirty shards),
// migration preserves reader-side snapshot isolation, and checkpoints
// round-trip the shard assignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/coarsest_partition.hpp"
#include "engine.hpp"
#include "shard/sharded_engine.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

std::vector<u32> to_vec(std::span<const u32> s) { return {s.begin(), s.end()}; }

void expect_matches_fresh(shard::ShardedEngine& engine, const std::string& what) {
  const core::Result fresh = core::solve(engine.instance());
  const core::PartitionView v = engine.view();
  ASSERT_EQ(v.num_classes(), fresh.num_blocks) << what;
  const std::span<const u32> q = v.labels();
  ASSERT_TRUE(std::equal(q.begin(), q.end(), fresh.q.begin(), fresh.q.end())) << what;
  const core::ViewCounters& c = v.counters();
  EXPECT_EQ(c.num_cycles, fresh.num_cycles) << what;
  EXPECT_EQ(c.cycle_nodes, fresh.cycle_nodes) << what;
  EXPECT_EQ(c.kept_tree_nodes, fresh.kept_tree_nodes) << what;
  EXPECT_EQ(c.residual_tree_nodes, fresh.residual_tree_nodes) << what;
}

/// Two components, each a cycle of length `len` with one tail node hanging
/// off node 0 of the cycle; B-labels taken from the two patterns.
graph::Instance two_cycles(std::size_t len, std::span<const u32> pat_a,
                           std::span<const u32> pat_b) {
  graph::Instance inst;
  const auto n = 2 * len;
  inst.f.resize(n);
  inst.b.resize(n);
  for (std::size_t i = 0; i < len; ++i) {
    inst.f[i] = static_cast<u32>((i + 1) % len);
    inst.f[len + i] = static_cast<u32>(len + (i + 1) % len);
    inst.b[i] = pat_a[i % pat_a.size()];
    inst.b[len + i] = pat_b[i % pat_b.size()];
  }
  return inst;
}

shard::ShardOptions with_shards(std::size_t k) {
  shard::ShardOptions sopt;
  sopt.shards = k;
  return sopt;
}

TEST(Sharded, CrossShardCycleStringCollisionIsOneGlobalClass) {
  // Identical 6-cycles land in different shards (size-balanced assignment),
  // yet the merge layer must fuse them class-for-class: canonical labels
  // match a fresh whole-instance solve, which pairs node i with i + 6.
  const std::vector<u32> pat = {1, 2, 1, 3, 2, 3};
  graph::Instance inst = two_cycles(6, pat, pat);
  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {},
                              with_shards(2));
  ASSERT_EQ(engine.shard_count(), 2u);
  EXPECT_NE(engine.shard_of(0), engine.shard_of(6));  // one component per shard
  expect_matches_fresh(engine, "initial");
  const core::PartitionView v = engine.view();
  for (u32 i = 0; i < 6; ++i) {
    EXPECT_TRUE(v.same_class(i, i + 6)) << "phase " << i;
  }
  EXPECT_EQ(v.num_classes(), 6u);  // the primitive pattern's 6 phase strings, fused pairwise
}

TEST(Sharded, EditCreatesAndBreaksCrossShardCollision) {
  // The two cycles differ in one position; a single set_b aligns them and a
  // later one splits them again — both pure merge-layer transitions (no f
  // rewiring, so no migration or reshard may happen).
  const std::vector<u32> pat_a = {1, 2, 1, 3, 2, 3};
  const std::vector<u32> pat_b = {1, 2, 1, 3, 2, 4};
  graph::Instance inst = two_cycles(6, pat_a, pat_b);
  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {},
                              with_shards(2));
  expect_matches_fresh(engine, "distinct strings");
  EXPECT_FALSE(engine.view().same_class(0, 6));

  engine.set_b(11, 3);  // pat_b -> pat_a: the reduced strings now collide
  expect_matches_fresh(engine, "collision");
  EXPECT_TRUE(engine.view().same_class(0, 6));

  engine.set_b(11, 5);  // and split again
  expect_matches_fresh(engine, "split");
  EXPECT_FALSE(engine.view().same_class(0, 6));

  EXPECT_EQ(engine.stats().migrations, 0u);
  EXPECT_EQ(engine.stats().reshards, 0u);
  EXPECT_EQ(engine.stats().cross_shard_edits, 0u);
}

TEST(Sharded, MigrationPreservesReaderSnapshotIsolation) {
  util::Rng rng(301);
  const graph::Instance inst = util::random_function(400, 3, rng);
  // Two halves as separate components.
  graph::Instance doubled;
  doubled.f.resize(800);
  doubled.b.resize(800);
  for (u32 i = 0; i < 400; ++i) {
    doubled.f[i] = inst.f[i];
    doubled.f[400 + i] = 400 + inst.f[i];
    doubled.b[i] = inst.b[i];
    doubled.b[400 + i] = inst.b[i] + 7;
  }
  shard::ShardedEngine engine(graph::Instance(doubled), core::Options::parallel(), {},
                              with_shards(2));
  ASSERT_NE(engine.shard_of(0), engine.shard_of(400));

  const core::PartitionView before = engine.view();
  const std::vector<u32> frozen = to_vec(before.labels());
  const u64 frozen_epoch = before.epoch();

  // Rewire f across the shard boundary: node 0's whole component migrates.
  engine.set_f(0, 450);
  EXPECT_EQ(engine.stats().cross_shard_edits, 1u);
  EXPECT_EQ(engine.stats().migrations + engine.stats().reshards, 1u);
  EXPECT_EQ(engine.shard_of(0), engine.shard_of(450));  // one shard now owns both

  expect_matches_fresh(engine, "after migration");
  // The reader-held view is an untouched snapshot of the pre-edit world.
  EXPECT_EQ(to_vec(before.labels()), frozen);
  EXPECT_EQ(before.epoch(), frozen_epoch);
  EXPECT_LT(before.epoch(), engine.view().epoch());
}

TEST(Sharded, OversizedComponentFallsBackToReshard) {
  util::Rng rng(302);
  graph::Instance inst;
  inst.f.resize(600);
  inst.b.resize(600);
  for (u32 i = 0; i < 600; ++i) {
    const u32 block = i < 300 ? 0 : 300;
    inst.f[i] = block + (i - block + 1) % 300;
    inst.b[i] = rng.below_u32(3);
  }
  shard::ShardOptions sopt = with_shards(2);
  sopt.reshard.max_migrate_fraction = 0.0;
  sopt.reshard.min_migrate_absolute = 0;  // every component is "too big"
  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {}, sopt);
  ASSERT_NE(engine.shard_of(0), engine.shard_of(300));

  engine.set_f(0, 300);  // cross-shard, but migration is forbidden
  EXPECT_EQ(engine.stats().reshards, 1u);
  EXPECT_EQ(engine.stats().migrations, 0u);
  expect_matches_fresh(engine, "after reshard");

  // The merged 600-node component and the balance that follows keep serving
  // edits correctly.
  engine.set_b(17, 9);
  expect_matches_fresh(engine, "edit after reshard");
}

TEST(Sharded, ViewReconcilesOnlyDirtyShards) {
  // 8 components across 4 shards; after the warm view, an edit confined to
  // one shard must re-reconcile exactly that shard.
  util::Rng rng(303);
  graph::Instance inst;
  for (std::size_t j = 0; j < 8; ++j) {
    const graph::Instance sub = util::random_function(100, 3, rng);
    const u32 off = static_cast<u32>(j * 100);
    for (std::size_t i = 0; i < 100; ++i) {
      inst.f.push_back(sub.f[i] + off);
      inst.b.push_back(sub.b[i]);
    }
  }
  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {},
                              with_shards(4));
  engine.view();
  const u64 merges_before = engine.stats().shard_merges;

  engine.set_b(5, 9);
  expect_matches_fresh(engine, "after one-shard edit");
  EXPECT_EQ(engine.stats().shard_merges, merges_before + 1);

  // A clean engine returns the cached view without touching any shard.
  const core::PartitionView v = engine.view();
  EXPECT_EQ(engine.stats().shard_merges, merges_before + 1);
  EXPECT_EQ(v.epoch(), engine.epoch());
}

TEST(Sharded, ViewReconciliationIsPerClass) {
  // The O(dirty classes) contract: after a warm view, a localized edit
  // whose dirty region is a single leaf must cost the merge layer a
  // handful of classes and exactly the relabelled nodes — never the
  // owning shard's size.
  util::Rng rng(310);
  graph::Instance inst;
  for (std::size_t j = 0; j < 8; ++j) {
    const graph::Instance sub = util::random_function(100, 3, rng);
    const u32 off = static_cast<u32>(j * 100);
    for (std::size_t i = 0; i < 100; ++i) {
      inst.f.push_back(sub.f[i] + off);
      inst.b.push_back(sub.b[i]);
    }
  }
  // A node nobody maps into: editing its B dirties exactly one node.
  std::vector<u8> has_pred(inst.size(), 0);
  for (const u32 t : inst.f) has_pred[t] = 1;
  u32 leaf = kNone;
  for (u32 v = 0; v < static_cast<u32>(inst.size()); ++v) {
    if (!has_pred[v] && inst.f[v] != v) {
      leaf = v;
      break;
    }
  }
  ASSERT_NE(leaf, kNone);

  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {},
                              with_shards(4));
  engine.view();  // warm: every shard fully requotiented
  const shard::ShardStats before = engine.stats();

  engine.set_b(leaf, 997);  // fresh B value: the leaf becomes its own class
  expect_matches_fresh(engine, "after leaf edit");

  const shard::ShardStats after = engine.stats();
  EXPECT_EQ(after.shard_merges, before.shard_merges + 1);
  EXPECT_EQ(after.full_merges, before.full_merges) << "per-class path must not requotient";
  // One dirty node; the churn is bounded by the few classes it touches
  // (its old class resized or destroyed, a fresh one created), while the
  // shard holds ~100 nodes and dozens of classes.
  EXPECT_EQ(after.merge_touched_nodes - before.merge_touched_nodes, 1u);
  EXPECT_LE(after.merge_touched_classes - before.merge_touched_classes, 4u);
  EXPECT_GE(after.merge_touched_classes - before.merge_touched_classes, 1u);

  // And the engine-level stats surface reports the same story.
  const EngineStats es = engine.serving_stats();
  EXPECT_EQ(es.merge_touched_nodes, after.merge_touched_nodes);
  EXPECT_EQ(es.shards, 4u);
  EXPECT_LE(es.merge_touched_nodes, es.deltas.nodes)
      << "merge work must be bounded by flushed delta nodes";
}

TEST(Sharded, NoOpEditsLeaveShardsClean) {
  util::Rng rng(304);
  const graph::Instance inst = util::random_function(300, 3, rng);
  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {},
                              with_shards(4));
  engine.view();
  const u64 merges = engine.stats().shard_merges;
  const std::vector<inc::Edit> noops = {inc::Edit::set_b(3, inst.b[3]),
                                        inc::Edit::set_f(4, inst.f[4])};
  engine.apply(noops);
  EXPECT_EQ(engine.epoch(), 0u);
  engine.view();
  EXPECT_EQ(engine.stats().shard_merges, merges);
}

TEST(Sharded, DegenerateShapes) {
  // k = 1 (pure overhead over one warm solver), k far beyond the component
  // count, n = 1, and an empty instance.
  util::Rng rng(305);
  const graph::Instance one_comp = util::long_tail(200, 16, 3, rng);
  for (const std::size_t k : {std::size_t{1}, std::size_t{16}}) {
    shard::ShardedEngine engine(graph::Instance(one_comp), core::Options::parallel(), {},
                                with_shards(k));
    EXPECT_EQ(engine.shard_count(), k);
    expect_matches_fresh(engine, "one component, k=" + std::to_string(k));
    engine.set_b(7, 5);
    expect_matches_fresh(engine, "edited, k=" + std::to_string(k));
  }

  graph::Instance tiny;
  tiny.f = {0};
  tiny.b = {42};
  shard::ShardedEngine single(graph::Instance(tiny), core::Options::parallel(), {},
                              with_shards(8));
  expect_matches_fresh(single, "n=1");
  single.set_f(0, 0);  // no-op self-loop
  EXPECT_EQ(single.epoch(), 0u);

  shard::ShardedEngine empty(graph::Instance{}, core::Options::parallel(), {}, with_shards(3));
  EXPECT_EQ(empty.view().num_classes(), 0u);
  EXPECT_EQ(empty.view().size(), 0u);
}

// ---- checkpoints ---------------------------------------------------------

TEST(Sharded, CheckpointRoundTripsShardAssignment) {
  util::Rng rng(306);
  graph::Instance inst;
  for (std::size_t j = 0; j < 6; ++j) {
    const graph::Instance sub = util::random_function(80, 3, rng);
    const u32 off = static_cast<u32>(j * 80);
    for (std::size_t i = 0; i < 80; ++i) {
      inst.f.push_back(sub.f[i] + off);
      inst.b.push_back(sub.b[i]);
    }
  }
  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {},
                              with_shards(3));
  util::Rng srng(307);
  const auto stream =
      util::random_edit_stream(inst, 60, util::EditMix::Uniform, 5, srng);
  engine.apply(stream);

  std::ostringstream os;
  ASSERT_TRUE(engine.save_checkpoint(os));
  std::istringstream is(os.str());
  const auto restored = shard::ShardedEngine::load(is);

  EXPECT_EQ(restored->shard_count(), engine.shard_count());
  EXPECT_EQ(restored->epoch(), engine.epoch());
  for (u32 v = 0; v < static_cast<u32>(engine.size()); ++v) {
    ASSERT_EQ(restored->shard_of(v), engine.shard_of(v)) << "node " << v;
  }
  EXPECT_EQ(to_vec(restored->view().labels()), to_vec(engine.view().labels()));
  expect_matches_fresh(*restored, "restored");

  // The restored engine keeps absorbing edits (including cross-shard ones).
  restored->set_f(0, static_cast<u32>(engine.size() - 1));
  expect_matches_fresh(*restored, "edited after restore");
}

TEST(Sharded, CheckpointBytesAreDeterministic) {
  util::Rng rng(308);
  const graph::Instance inst = util::random_function(256, 4, rng);
  const auto build = [&] {
    auto e = std::make_unique<shard::ShardedEngine>(graph::Instance(inst),
                                                    core::Options::parallel(),
                                                    pram::ExecutionContext{}, with_shards(4));
    e->set_b(3, 9);
    e->set_f(10, 200);
    return e;
  };
  const auto a = build();
  const auto b = build();
  std::ostringstream oa, ob, oa2;
  a->save_checkpoint(oa);
  b->save_checkpoint(ob);
  a->save_checkpoint(oa2);
  EXPECT_EQ(oa.str(), ob.str());   // equal engines, equal bytes
  EXPECT_EQ(oa.str(), oa2.str());  // saving is side-effect free
}

TEST(Sharded, CheckpointErrorPaths) {
  util::Rng rng(309);
  const graph::Instance inst = util::random_function(128, 3, rng);
  shard::ShardedEngine engine(graph::Instance(inst), core::Options::parallel(), {},
                              with_shards(2));
  std::ostringstream os;
  engine.save_checkpoint(os);
  const std::string bytes = os.str();

  // Truncations anywhere must throw, never crash or mis-load.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{9},
                                bytes.size() / 2, bytes.size() - 3}) {
    std::istringstream is(bytes.substr(0, cut));
    EXPECT_THROW(shard::ShardedEngine::load(is), std::runtime_error) << "cut " << cut;
  }

  // A plain incremental checkpoint is not a sharded one and vice versa...
  auto incremental = engines().make("incremental", graph::Instance(inst));
  std::ostringstream plain;
  incremental->save_checkpoint(plain);
  std::istringstream wrong_kind(plain.str());
  EXPECT_THROW(shard::ShardedEngine::load(wrong_kind), std::runtime_error);

  // ...but load_engine_checkpoint dispatches both by magic.
  std::istringstream sharded_in(bytes);
  auto from_sharded = load_engine_checkpoint(sharded_in);
  EXPECT_EQ(from_sharded.kind, "sharded");
  EXPECT_EQ(from_sharded.engine->kind(), "sharded");
  EXPECT_EQ(to_vec(from_sharded.engine->view().labels()), to_vec(engine.view().labels()));
  std::istringstream plain_in(plain.str());
  const auto from_plain = load_engine_checkpoint(plain_in);
  EXPECT_EQ(from_plain.kind, "incremental");
  EXPECT_EQ(from_plain.engine->kind(), "incremental");
  std::istringstream garbage("not a checkpoint at all");
  EXPECT_THROW(load_engine_checkpoint(garbage), std::runtime_error);
}

}  // namespace
}  // namespace sfcp
