// E1 / E2 — the full SFCP solver (Theorem 5.1) vs baselines: every
// registered pipeline strategy (one benchmark per sfcp::registry() entry,
// run through a reusable Solver so workspace amortization is measured),
// plus Hopcroft refinement, label doubling and naive refinement.
#include <benchmark/benchmark.h>

#include <string>

#include "core/baselines.hpp"
#include "core/registry.hpp"
#include "core/solver.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

graph::Instance shaped(std::size_t n, int kind, util::Rng& rng) {
  switch (kind) {
    case 0: return util::random_function(n, 4, rng);
    case 1: return util::random_permutation(n, 4, rng);
    default: return util::mergeable(n, 4, rng);
  }
}

void BM_SfcpStrategy(benchmark::State& state, core::Options opt) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  util::Rng rng(n + kind);
  const auto inst = shaped(n, kind, rng);
  core::Solver solver(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel(kind == 0 ? "random_fn" : kind == 1 ? "permutation" : "mergeable");
}

// One benchmark per registered strategy: the registry makes the full N-way
// comparison a loop instead of hand-maintained BENCHMARK() declarations.
const int kRegisteredSfcpBenches = [] {
  for (const auto& entry : sfcp::registry().all()) {
    benchmark::RegisterBenchmark(("BM_Sfcp/" + entry.name).c_str(), BM_SfcpStrategy,
                                 entry.options)
        ->ArgsProduct({{1 << 14, 1 << 17, 1 << 20}, {0, 1, 2}});
  }
  return 0;
}();

void BM_Hopcroft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto inst = util::random_function(n, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_hopcroft(inst));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_Hopcroft)->Range(1 << 14, 1 << 20);

void BM_LabelDoubling(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto inst = util::random_function(n, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_label_doubling(inst));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_LabelDoubling)->Range(1 << 14, 1 << 20);

void BM_NaiveRefinement(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  const auto inst = util::random_function(n, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_naive_refinement(inst));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
}
BENCHMARK(BM_NaiveRefinement)->Range(1 << 14, 1 << 18);

}  // namespace
