// Orbit structure of pseudo-random generators.
//
// A PRNG with an m-bit state is a function f on {0..2^m-1}; its functional
// graph (rho shapes, cycle lengths, tail depths) determines the generator's
// period behaviour.  This example builds three classic generators truncated
// to a small state space, analyzes them with the orbit machinery, and then
// uses the coarsest-partition solver to answer a behavioural question: which
// states are indistinguishable when only the top output bit is observable?
//
//   $ ./pseudorandom_orbits [state_bits]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "sfcp.hpp"

namespace {

using namespace sfcp;

std::vector<u32> make_lcg(u32 bits, u64 a, u64 c) {
  const u64 mod = 1ull << bits;
  std::vector<u32> f(mod);
  for (u64 x = 0; x < mod; ++x) f[x] = static_cast<u32>((a * x + c) % mod);
  return f;
}

std::vector<u32> make_xorshift(u32 bits) {
  const u64 mod = 1ull << bits;
  std::vector<u32> f(mod);
  for (u64 x = 0; x < mod; ++x) {
    u64 v = x;
    v ^= (v << 3) & (mod - 1);
    v ^= v >> 2;
    v ^= (v << 1) & (mod - 1);
    f[x] = static_cast<u32>(v & (mod - 1));
  }
  return f;
}

std::vector<u32> make_middle_square(u32 bits) {
  // von Neumann's middle-square method, the classic "bad" generator whose
  // functional graph collapses into tiny cycles with long tails.
  const u64 mod = 1ull << bits;
  std::vector<u32> f(mod);
  for (u64 x = 0; x < mod; ++x) {
    const u64 sq = x * x;
    f[x] = static_cast<u32>((sq >> (bits / 2)) & (mod - 1));
  }
  return f;
}

// One session for all three generators: same-sized instances, so the
// solver's workspaces are reused across analyze() calls.
core::Solver& session() {
  static core::Solver solver(sfcp::registry().at("parallel"));
  return solver;
}

void analyze(const std::string& name, const std::vector<u32>& f, u32 bits) {
  const auto st = graph::orbit_stats(f);
  std::cout << std::left << std::setw(16) << name << " states=" << f.size()
            << "  cycles=" << st.num_cycles << "  cycle_nodes=" << st.cycle_nodes
            << "  max_cycle=" << st.max_cycle_len << "  max_tail=" << st.max_tail
            << "  mean_tail=" << std::fixed << std::setprecision(2) << st.mean_tail << "\n";

  // Behavioural reduction: observe only the top state bit each step.  Two
  // states are equivalent iff their infinite top-bit streams agree — the
  // single function coarsest partition with B = top bit.
  graph::Instance inst;
  inst.f = f;
  inst.b.resize(f.size());
  for (std::size_t x = 0; x < f.size(); ++x) {
    inst.b[x] = static_cast<u32>((x >> (bits - 1)) & 1);
  }
  const auto r = session().solve(inst);
  std::cout << std::setw(16) << "" << " observable top-bit classes: " << r.num_blocks << " of "
            << f.size() << " states ("
            << (r.num_blocks == f.size() ? "fully distinguishable"
                                         : "observationally redundant states exist")
            << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const u32 bits = argc > 1 ? static_cast<u32>(std::strtoul(argv[1], nullptr, 10)) : 12;
  if (bits < 2 || bits > 22) {
    std::cerr << "state_bits must be in [2, 22]\n";
    return 1;
  }
  std::cout << "Functional-graph analysis of PRNG state spaces (" << bits << "-bit states)\n\n";

  // Full-period LCG (Hull–Dobell: c odd, a ≡ 1 mod 4) vs a truncated
  // multiplicative one vs middle-square.
  analyze("lcg(a=5,c=1)", make_lcg(bits, 5, 1), bits);
  analyze("lcg(a=4,c=2)", make_lcg(bits, 4, 2), bits);  // violates Hull–Dobell
  analyze("xorshift", make_xorshift(bits), bits);
  analyze("middle-square", make_middle_square(bits), bits);

  // A full-period LCG must form a single cycle through all states; assert
  // the classic theory as a sanity check of the orbit machinery.
  const auto good = graph::orbit_stats(make_lcg(bits, 5, 1));
  if (good.num_cycles != 1 || good.max_cycle_len != (1u << bits)) {
    std::cerr << "ERROR: Hull–Dobell LCG did not have full period\n";
    return 1;
  }
  std::cout << "\nHull–Dobell check passed: lcg(a=5,c=1) is a single " << (1u << bits)
            << "-cycle.\n";
  return 0;
}
