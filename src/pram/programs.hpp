#pragma once
// The paper's algorithms written as *PRAM programs* for the step simulator —
// the closest this reproduction gets to running the 1993 pseudocode as-is.
//
// Each builder returns a self-contained program (round function + memory
// layout + termination predicate) for pram::Simulator.  The OpenMP library
// code computes the same results fast; these programs exist to measure the
// paper's claims in the paper's own cost model: exact synchronous rounds
// and processor activations, under the exact write discipline.
//
//   * broadcast_or  — the [9]-style "is any bit set" flag raise
//                     (common CRCW, O(1) rounds)
//   * list_rank     — Wyllie pointer jumping (CREW, ceil(lg n) rounds)
//   * partition_round / simulate_partition — Algorithm partition §3.2
//                     (ARBITRARY CRCW: writers carry different values)

#include <functional>
#include <memory>
#include <vector>

#include "pram/simulator.hpp"
#include "pram/types.hpp"

namespace sfcp::pram {

/// A packaged PRAM program: construct with make_*, run with `run`.
/// (The simulator lives behind a shared_ptr so the program's closures can
/// reference it safely across moves.)
struct Program {
  std::shared_ptr<Simulator> sim;
  Simulator::RoundFn round;
  std::function<bool()> done;
  u64 max_rounds = 0;

  /// Executes the program and returns the simulator's report.
  SimReport run() { return sim->run(round, done, max_rounds); }
};

/// Flag-raise OR over `bits`: after one round, cell 0 holds 1 iff any bit
/// is set.  Requires (at least) common CRCW — the program FAULTS on CREW,
/// which is exactly the [9] separation the tests assert.
Program make_broadcast_or(PramModel model, const std::vector<u8>& bits);

/// Wyllie list ranking over successor array `next` (kNone-terminated
/// single list): memory holds next[0..n) and rank[n..2n); terminates when
/// all pointers reach the tail.  CREW suffices.
Program make_list_rank(PramModel model, const std::vector<u32>& next);

/// One round j of Algorithm partition (§3.2) on k cycles of length l
/// stored flat in EQ[0..kl): each participating position d writes its id
/// into BB[EQ[d], EQ[d+2^{j-1}]] and reads the winner back.  BB is realized
/// as a dense (kl)^2 table inside simulator memory — exactly the paper's
/// layout.  Needs ARBITRARY CRCW (writers disagree); common CRCW faults
/// whenever two cycles share a label pair.
Program make_partition_round(PramModel model, const std::vector<u32>& eq, u32 j);

/// Runs Algorithm partition (§3.2) to completion on the simulator for k
/// cycles of power-of-two length l given B-labels flat in `labels`;
/// returns the final EQ array (one label per position) and the report.
struct PartitionRun {
  std::vector<u32> eq;
  SimReport report;
};
PartitionRun simulate_partition(PramModel model, const std::vector<u32>& labels, u32 k, u32 l);

}  // namespace sfcp::pram
