#include "core/tree_labeling.hpp"

#include <bit>
#include <cassert>
#include <unordered_map>

#include "pram/parallel_for.hpp"
#include "prim/compact.hpp"
#include "prim/hash_table.hpp"
#include "prim/integer_sort.hpp"
#include "prim/rename.hpp"
#include "prim/scan.hpp"

namespace sfcp::core {

namespace {

// Fresh labels for residual nodes start above every already-used label so
// they can never collide with cycle labels (Lemma 4.1 guarantees residual
// nodes share no Q-label with any cycle node).
struct Residual {
  std::vector<u32> nodes;       ///< residual (unkept) tree nodes
  std::vector<u8> is_residual;  ///< membership flags
};

// Step 5, strategy (a): process residual nodes level by level; one GLOBAL
// (B, Q_parent) -> label table realizes Lemma 2.1(i) directly.
void label_level_synchronous(const graph::Instance& inst, const Residual& res,
                             std::span<const u32> level, std::vector<u32>& q, u32 fresh_base) {
  const std::size_t n = inst.size();
  if (res.nodes.empty()) return;
  // Bucket residual nodes by level (stable integer sort).
  std::vector<u64> keys(res.nodes.size());
  pram::parallel_for(0, res.nodes.size(), [&](std::size_t i) { keys[i] = level[res.nodes[i]]; });
  const std::vector<u32> by_level = prim::sort_order_by_key(keys);
  prim::ConcurrentPairMap table(res.nodes.size());
  std::size_t begin = 0;
  while (begin < res.nodes.size()) {
    const u32 lv = static_cast<u32>(keys[by_level[begin]]);
    std::size_t end = begin + 1;
    while (end < res.nodes.size() && keys[by_level[end]] == lv) ++end;
    pram::parallel_for(begin, end, [&](std::size_t i) {
      const u32 x = res.nodes[by_level[i]];
      const u32 parent_q = q[inst.f[x]];
      assert(parent_q != kNone && "parent must be labelled before its children");
      q[x] = table.insert_or_get(pack_pair(inst.b[x], parent_q), fresh_base + x);
    });
    begin = end;
  }
  (void)n;
}

// Step 5, strategy (b): ancestor doubling.  Residual chains are extended
// with one virtual self-looping node per distinct anchor label (the Q-label
// of the first labelled ancestor), so path strings become infinite and
// eventually constant; 2^j-prefix codes then converge to the Lemma 4.2
// equivalence in ceil(log2(depth+2)) rounds.
void label_ancestor_doubling(const graph::Instance& inst, const Residual& res,
                             std::vector<u32>& q, u32 fresh_base) {
  const std::size_t nr = res.nodes.size();
  if (nr == 0) return;
  // Dense index of residual nodes.
  std::vector<u32> idx(inst.size(), kNone);
  pram::parallel_for(0, nr, [&](std::size_t i) { idx[res.nodes[i]] = static_cast<u32>(i); });
  // Anchor labels (Q of first labelled ancestor) for residual roots.
  std::vector<u32> anchor(nr, kNone);
  pram::parallel_for(0, nr, [&](std::size_t i) {
    const u32 p = inst.f[res.nodes[i]];
    if (!res.is_residual[p]) anchor[i] = q[p];
  });
  // Dense ids for distinct anchors -> virtual node per anchor class.
  std::vector<u64> anchor_keys;
  std::vector<u32> anchored_nodes;
  for (std::size_t i = 0; i < nr; ++i) {
    if (anchor[i] != kNone) {
      anchor_keys.push_back(anchor[i]);
      anchored_nodes.push_back(static_cast<u32>(i));
    }
  }
  const auto anchor_rename = prim::rename_sorted(anchor_keys);
  const u32 num_virtual = anchor_rename.num_classes;
  const std::size_t total = nr + num_virtual;
  // code[u]: current 2^j-prefix code; anc[u]: 2^j-th ancestor (virtual
  // nodes self-loop).  Initial codes must separate "real node with B-label
  // b" from "virtual node with anchor class a": tag with the pair's high
  // bit via rename over (tag, value).
  std::vector<u32> tag(total), val(total);
  pram::parallel_for(0, total, [&](std::size_t u) {
    if (u < nr) {
      tag[u] = 0;
      val[u] = inst.b[res.nodes[u]];
    } else {
      tag[u] = 1;
      val[u] = static_cast<u32>(u - nr);
    }
  });
  auto code_r = prim::rename_pairs_hashed(tag, val);
  std::vector<u32> code = std::move(code_r.labels);
  std::vector<u32> anc(total);
  pram::parallel_for(0, nr, [&](std::size_t i) {
    const u32 p = inst.f[res.nodes[i]];
    anc[i] = res.is_residual[p] ? idx[p] : kNone;  // patched below for anchors
  });
  pram::parallel_for(0, anchored_nodes.size(), [&](std::size_t t) {
    anc[anchored_nodes[t]] = static_cast<u32>(nr) + anchor_rename.labels[t];
  });
  pram::parallel_for(0, num_virtual, [&](std::size_t v) {
    anc[nr + v] = static_cast<u32>(nr + v);  // self-loop
  });
  const int rounds = static_cast<int>(std::bit_width(static_cast<u64>(total))) + 1;
  std::vector<u32> code2(total), anc2(total);
  for (int r = 0; r < rounds; ++r) {
    auto paired = prim::rename_pairs_hashed(code, [&] {
      std::vector<u32> right(total);
      pram::parallel_for(0, total, [&](std::size_t u) { right[u] = code[anc[u]]; });
      return right;
    }());
    pram::parallel_for(0, total, [&](std::size_t u) {
      code2[u] = paired.labels[u];
      anc2[u] = anc[anc[u]];
    });
    code.swap(code2);
    anc.swap(anc2);
  }
  // Final labels: fresh_base + winner of each code class.
  prim::ConcurrentPairMap table(nr);
  pram::parallel_for(0, nr, [&](std::size_t i) {
    q[res.nodes[i]] = table.insert_or_get(code[i], fresh_base + static_cast<u32>(i));
  });
}

// Step 5, strategy (c): per-root DFS with a global sequential rename map.
void label_sequential_dfs(const graph::Instance& inst, const graph::RootedForest& forest,
                          const Residual& res, std::vector<u32>& q, u32 fresh_base) {
  std::unordered_map<u64, u32> table;
  table.reserve(res.nodes.size());
  u32 next_label = fresh_base;
  // Residual roots: residual nodes whose parent is not residual.  Walk each
  // subtree top-down; children of a residual node inside the residual
  // forest are exactly its forest children that are residual.
  std::vector<u32> stack;
  for (const u32 x : res.nodes) {
    if (res.is_residual[inst.f[x]]) continue;
    stack.push_back(x);
    while (!stack.empty()) {
      const u32 v = stack.back();
      stack.pop_back();
      const u64 key = pack_pair(inst.b[v], q[inst.f[v]]);
      const auto [it, inserted] = table.emplace(key, next_label);
      if (inserted) ++next_label;
      q[v] = it->second;
      for (u32 i = forest.child_off[v]; i < forest.child_off[v + 1]; ++i) {
        stack.push_back(forest.child[i]);
      }
    }
  }
  pram::charge(res.nodes.size());
}

}  // namespace

TreeLabeling label_trees(const graph::Instance& inst, const graph::CycleStructure& cs,
                         const CycleLabeling& cl, const TreeLabelingOptions& opt) {
  TreeLabeling out;
  label_trees_into(inst, cs, cl, opt, out);
  return out;
}

void label_trees_into(const graph::Instance& inst, const graph::CycleStructure& cs,
                      const CycleLabeling& cl, const TreeLabelingOptions& opt, TreeLabeling& out) {
  const std::size_t n = inst.size();
  out.q = cl.q;
  out.kept = 0;
  out.residual = 0;

  const graph::RootedForest forest = graph::build_rooted_forest(inst.f, cs.on_cycle);
  const graph::ForestLevels lv = graph::forest_levels(forest, opt.forest);

  // Steps 1-2: mark tree nodes whose B-label matches the corresponding
  // cycle node (Lemma 4.1); cycle nodes are trivially marked.
  std::vector<u8> marked(n, 1);
  std::vector<u32> corresponding(n, kNone);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (cs.on_cycle[x]) return;
    const u32 r = lv.root_of[x];
    const u32 c = cs.cycle_of[r];
    const u32 k = cs.length[r];
    const u32 t = (cs.rank[r] + (k - lv.level[x] % k)) % k;
    const u32 y = cs.node_at(c, t);
    corresponding[x] = y;
    marked[x] = inst.b[x] == inst.b[y] ? 1 : 0;
  });

  // Step 3: keep a node iff its whole root path is marked — root-path sum
  // of "unmarked" indicators must be zero.
  std::vector<i64> bad(n);
  pram::parallel_for(0, n, [&](std::size_t x) { bad[x] = marked[x] ? 0 : 1; });
  const std::vector<i64> bad_on_path = graph::root_path_sums(forest, bad, opt.forest);

  // Step 4: kept nodes copy their corresponding cycle node's Q-label.
  Residual res;
  res.is_residual.assign(n, 0);
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (cs.on_cycle[x]) return;
    if (bad_on_path[x] == 0) {
      out.q[x] = cl.q[corresponding[x]];
    } else {
      res.is_residual[x] = 1;
    }
  });
  res.nodes = prim::pack_index(res.is_residual);
  out.residual = static_cast<u32>(res.nodes.size());
  out.kept = static_cast<u32>(n - cs.cycle_nodes.size() - res.nodes.size());

  // Step 5: label the residual forest.
  const u32 fresh_base = cl.num_labels;
  switch (opt.strategy) {
    case TreeLabelStrategy::LevelSynchronous:
      label_level_synchronous(inst, res, lv.level, out.q, fresh_base);
      break;
    case TreeLabelStrategy::AncestorDoubling:
      label_ancestor_doubling(inst, res, out.q, fresh_base);
      break;
    case TreeLabelStrategy::SequentialDFS:
      label_sequential_dfs(inst, forest, res, out.q, fresh_base);
      break;
  }
}

}  // namespace sfcp::core
