#!/usr/bin/env python3
"""Per-phase roofline report over BENCH_*.json profile objects.

SFCP_PROFILE builds attach a flattened phase profile to every JSONL bench
record (src/util/bench_json.hpp):

    {"name":"BM_ServePipelinedEdits","...","ms":1.2,
     "profile":{"serve/epoch_apply":{"ns":900000,"count":8,"flops":0,
                "bytes":73728},...}}

This tool renders those profiles as indented trees with total/self time and
achieved GB/s / GFLOP/s per phase, against a measured machine peak:

    tools/profile_report.py BENCH_serve.json [BENCH_peak.json ...]
                            [--peak <GB/s>] [--top <k>]

The peak comes from (first match wins): --peak, or any "machine_peak"
record in the given files (written by bench_machine_peak, whose `n` field
is bytes-per-pass).  Without either, the %peak column is omitted.

Semantics to read the table with: a parent's total already includes
same-thread children (the scope physically spans them), but NOT scopes
opened on pram::parallel_for worker threads, whose summed time can exceed
the parent's wall time — self time is clamped at zero there.  GB/s and
GFLOP/s divide a phase's OWN charged traffic by its own wall time (charges
are not rolled up into ancestors).

Families whose root was never recorded as a scope of its own (the fleet
engine's fleet/route | fleet/fault_in | fleet/evict | fleet/cold_batch)
are grouped under a synthesized rollup row summing their maximal members,
so the report reads the same whether or not the root phase exists.
Records carrying google-benchmark `counters` (bench_fleet exports its
FleetStats that way) get derived fleet lines under the table: evictions/sec
through the evict path, fault-in ms/call, the exported fault-in-inclusive
view p99, and the warm-set bound.  Records with the pooled warm-fan phases
(fleet/warm_fan = bucket dispatch, fleet/epoch_wait = the closing barrier)
additionally get a per-barrier cost line, and records whose strategy
carries a /t<k> thread-width segment (BM_FleetConcurrentEdits/zipf/t4)
are grouped into a warm-fan scaling section after the tables: speedup vs
the family's t1 lane and the implied parallel efficiency (speedup/width).

`--selftest` runs the built-in checks and exits (used by ctest).
"""

import argparse
import json
import os
import re
import sys
import tempfile


def load(paths):
    """paths -> (profiles, peak_gbps|None).

    profiles: list of (label, {path: {ns,count,flops,bytes}}, {counter: v},
    meta) in file order, one entry per record that carried a non-empty
    profile, merged across repeated records of the same benchmark key
    (ns/count/flops/bytes sum; counters are gauges, so the last record
    wins).  meta carries {"name", "strategy", "ms"} with ms reduced to the
    best-of minimum — what the warm-fan scaling section anchors on.
    """
    merged = {}   # key -> {path: stats}
    counters = {}  # key -> {name: value}
    best_ms = {}  # key -> min ms
    order = []
    peak = None
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SystemExit(f"{path}:{lineno}: not a JSON record: {exc}")
                if rec.get("name") == "machine_peak" and peak is None:
                    ns = float(rec["ms"]) * 1e6
                    if ns > 0:
                        peak = float(rec.get("n", 0)) / ns  # bytes/ns == GB/s
                prof = rec.get("profile")
                if not prof:
                    continue
                key = (rec.get("name", "?"), rec.get("strategy", ""),
                       int(rec.get("n", 0)), int(rec.get("threads", 0)))
                if key not in merged:
                    merged[key] = {}
                    order.append(key)
                dst = merged[key]
                for phase, st in prof.items():
                    acc = dst.setdefault(phase,
                                         {"ns": 0, "count": 0, "flops": 0, "bytes": 0})
                    for field in acc:
                        acc[field] += int(st.get(field, 0))
                ms = float(rec.get("ms", 0))
                if ms > 0 and (key not in best_ms or ms < best_ms[key]):
                    best_ms[key] = ms
                ctr = rec.get("counters")
                if ctr:
                    counters[key] = {k: float(v) for k, v in ctr.items()}
    labels = []
    for key in order:
        name, strategy, n, threads = key
        parts = [name]
        if strategy:
            parts.append(strategy)
        if n:
            parts.append(f"n={n}")
        if threads:
            parts.append(f"t={threads}")
        meta = {"name": name, "strategy": strategy, "ms": best_ms.get(key, 0.0)}
        labels.append((" ".join(parts), merged[key], counters.get(key, {}), meta))
    return labels, peak


def self_ns(phases, path):
    """Own ns minus maximal recorded descendants' ns, clamped at zero.

    Paths may skip levels ("a/b/c/d" recorded without "a/b/c"), so the
    subtraction covers every recorded descendant that has no OTHER recorded
    ancestor between itself and `path` — each nanosecond is subtracted once.
    """
    prefix = path + "/"
    child = 0
    skip = None
    for p in sorted(p for p in phases if p.startswith(prefix)):
        if skip and p.startswith(skip):
            continue
        child += phases[p]["ns"]
        skip = p + "/"
    return max(phases[path]["ns"] - child, 0)


def group_orphans(phases):
    """Returns a copy with rollup rows for families without a recorded root.

    When two or more paths share a top segment that was never recorded as a
    phase of its own (fleet/route, fleet/evict, ... with no "fleet"), a
    synthetic root summing the maximal members is added so the family
    renders as one indented group.  Its self time nets to zero, so sums
    stay honest.
    """
    phases = dict(phases)
    families = {}
    for path in phases:
        seg = path.split("/", 1)[0]
        if seg != path:
            families.setdefault(seg, []).append(path)
    for seg, members in families.items():
        if seg in phases or len(members) < 2:
            continue
        agg = {"ns": 0, "count": 0, "flops": 0, "bytes": 0}
        skip = None
        for path in sorted(members):  # maximal members only: no double count
            if skip and path.startswith(skip):
                continue
            for field in agg:
                agg[field] += phases[path][field]
            skip = path + "/"
        phases[seg] = agg
    return phases


def fleet_summary(phases, counters):
    """Derived fleet lines: evictions/sec through the evict path, fault-in
    cost, the exported fault-in-inclusive view p99, and the warm-set bound.
    Empty for records without fleet phases or fleet counters."""
    counters = counters or {}
    if (not any(p == "fleet" or p.startswith("fleet/") for p in phases)
            and "evictions" not in counters):
        return []
    lines = []
    evictions = counters.get("evictions")
    evict = phases.get("fleet/evict")
    if evictions and evict and evict["ns"] > 0:
        rate = evictions / (evict["ns"] / 1e9)
        lines.append(f"fleet: {evictions:,.0f} evictions, {rate:,.0f}/s "
                     f"through fleet/evict")
    parts = []
    fault = phases.get("fleet/fault_in")
    if fault and fault["count"]:
        parts.append(f"fault-in {fault['ns'] / 1e6 / fault['count']:.3f} "
                     f"ms/call x{fault['count']}")
    if "p99_us" in counters:
        parts.append(f"view p99 {counters['p99_us']:.1f} us "
                     f"(fault-in inclusive)")
    if parts:
        lines.append("fleet: " + ", ".join(parts))
    if "warm" in counters and "instances" in counters:
        bound = (f"fleet: warm {counters['warm']:,.0f} of "
                 f"{counters['instances']:,.0f} touched instances")
        if "warm_bytes" in counters:
            bound += f", warm bytes {counters['warm_bytes'] / 1e6:.2f} MB"
        lines.append(bound)
    # Pooled warm fan: per-barrier cost and where the caller's wall goes —
    # dispatching buckets (fleet/warm_fan) vs blocked at the epoch barrier
    # (fleet/epoch_wait, which also runs the caller lane's own buckets).
    fan = phases.get("fleet/warm_fan")
    wait = phases.get("fleet/epoch_wait")
    if fan and wait and fan["count"]:
        total = fan["ns"] + wait["ns"]
        share = 100.0 * wait["ns"] / total if total else 0.0
        lines.append(
            f"fleet: warm fan {fan['count']:,} barriers, "
            f"{total / 1e6 / fan['count']:.3f} ms/barrier "
            f"(dispatch {fan['ns'] / 1e6 / fan['count']:.3f} ms, epoch_wait "
            f"{wait['ns'] / 1e6 / fan['count']:.3f} ms = {share:.0f}% of fan wall)")
    return lines


WIDTH_SEG = re.compile(r"(?:^|/)t(\d+)(?=/|$)")


def warm_fan_scaling(entries):
    """Cross-record warm-fan scaling lines.

    Groups entries whose strategy carries a /t<k> width segment into
    families (name + strategy minus that segment) and, for families with a
    t1 anchor, reports speedup = t1 ms / tk ms and the implied parallel
    efficiency speedup/k — the warm-path number the pooled fleet exists
    for.  The t1 lane runs poolless (the serial warm loop), so this is a
    pooled-vs-serial ratio, not barrier accounting; on a one-core runner it
    sits near 1x (see README "Fleet serving").
    """
    fams = {}
    for _label, phases, _counters, meta in entries:
        m = WIDTH_SEG.search(meta["strategy"])
        if not m:
            continue
        fam = (meta["name"], WIDTH_SEG.sub("", meta["strategy"]).strip("/"))
        fams.setdefault(fam, {})[int(m.group(1))] = (meta["ms"], phases)
    lines = []
    for fam, widths in sorted(fams.items()):
        if widths.get(1, (0.0, None))[0] <= 0 or len(widths) < 2:
            continue
        base = widths[1][0]
        for width in sorted(widths):
            if width == 1:
                continue
            ms, phases = widths[width]
            if ms <= 0:
                continue
            speedup = base / ms
            eff = 100.0 * speedup / width
            name, strategy = fam
            lines.append(f"{name} {strategy} t{width}: {base:.3f} / {ms:.3f} ms"
                         f" = {speedup:.2f}x vs t1, parallel efficiency {eff:.0f}%")
    return lines


def render(label, phases, peak, top=0, out=sys.stdout, counters=None):
    phases = group_orphans(phases)
    out.write(f"== {label} ==\n")
    header = (f"{'phase':<36}{'count':>9}{'total ms':>12}{'ms/call':>12}"
              f"{'self ms':>12}{'GB/s':>9}{'GFLOP/s':>10}")
    if peak:
        header += f"{'%peak':>8}"
    out.write(header + "\n")
    paths = sorted(phases)
    # Indent each phase under its nearest RECORDED ancestor; the label keeps
    # any skipped levels ("inc/dirty_region" under "serve/epoch_apply").
    # Ancestors sort before descendants, so one pass fills the depth map.
    depth_of, label_of = {}, {}
    for path in paths:
        depth_of[path], label_of[path] = 0, path
        pos = path.rfind("/")
        while pos > 0:
            anc = path[:pos]
            if anc in depth_of:
                depth_of[path] = depth_of[anc] + 1
                label_of[path] = path[pos + 1:]
                break
            pos = path.rfind("/", 0, pos)
    if top:
        keep = sorted(paths, key=lambda p: -self_ns(phases, p))[:top]
        paths = [p for p in paths if p in set(keep)]
    for path in paths:
        st = phases[path]
        depth = depth_of[path]
        leaf = label_of[path]
        total_ms = st["ns"] / 1e6
        per_call = total_ms / st["count"] if st["count"] else 0.0
        row = (f"{'  ' * depth + leaf:<36}{st['count']:>9}{total_ms:>12.3f}"
               f"{per_call:>12.4f}{self_ns(phases, path) / 1e6:>12.3f}")
        gbps = st["bytes"] / st["ns"] if st["ns"] and st["bytes"] else None
        row += f"{gbps:>9.2f}" if gbps is not None else f"{'-':>9}"
        gflops = st["flops"] / st["ns"] if st["ns"] and st["flops"] else None
        row += f"{gflops:>10.2f}" if gflops is not None else f"{'-':>10}"
        if peak:
            row += (f"{100.0 * gbps / peak:>7.1f}%" if gbps is not None
                    else f"{'-':>8}")
        out.write(row + "\n")
    for line in fleet_summary(phases, counters):
        out.write(line + "\n")
    out.write("\n")


def selftest():
    rec = {"name": "BM_X", "n": 256, "strategy": "localized", "threads": 4, "ms": 2.0,
           "profile": {
               "serve": {"ns": 4_000_000, "count": 2, "flops": 0, "bytes": 0},
               "serve/epoch_apply": {"ns": 3_000_000, "count": 2, "flops": 1_000_000,
                                     "bytes": 6_000_000},
               "serve/notify": {"ns": 500_000, "count": 2, "flops": 0, "bytes": 0}}}
    peak_rec = {"name": "machine_peak", "n": 201326592, "strategy": "triad",
                "threads": 4, "ms": 10.0}  # 201326592 B / 10 ms = 20.13 GB/s
    plain = {"name": "BM_Y", "n": 1, "strategy": "", "threads": 1, "ms": 0.1}
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.json")
        with open(path, "w", encoding="utf-8") as fh:
            for r in (rec, rec, peak_rec, plain):  # rec twice: merge must sum
                fh.write(json.dumps(r) + "\n")
        labels, peak = load([path])
        assert peak is not None and abs(peak - 20.1326592) < 1e-6, peak
        assert len(labels) == 1, labels  # the profile-less record contributes nothing
        label, phases, counters, meta = labels[0]
        assert label == "BM_X localized n=256 t=4", label
        assert counters == {}, counters
        assert meta == {"name": "BM_X", "strategy": "localized", "ms": 2.0}, meta
        assert phases["serve"]["ns"] == 8_000_000, phases  # merged across records
        # self of "serve" = 8ms - (6ms apply + 1ms notify) = 1ms
        assert self_ns(phases, "serve") == 1_000_000, self_ns(phases, "serve")
        assert self_ns(phases, "serve/epoch_apply") == 6_000_000
        # achieved GB/s of epoch_apply = 12MB / 6ms = 2 GB/s
        assert abs(phases["serve/epoch_apply"]["bytes"] /
                   phases["serve/epoch_apply"]["ns"] - 2.0) < 1e-9
        import io
        buf = io.StringIO()
        render(label, phases, peak, out=buf)
        text = buf.getvalue()
        assert "%peak" in text and "epoch_apply" in text and "GB/s" in text, text
        assert "  epoch_apply" in text, "child must be indented under serve"
        # Skipped levels: "serve/epoch_apply/inc/repair" without a recorded
        # ".../inc" hangs off epoch_apply (depth 2, compound label) and is
        # subtracted from epoch_apply's self time exactly once.
        phases["serve/epoch_apply/inc/repair"] = {
            "ns": 2_000_000, "count": 9, "flops": 0, "bytes": 0}
        phases["serve/epoch_apply/inc/repair/sigmap"] = {
            "ns": 500_000, "count": 9, "flops": 0, "bytes": 0}
        assert self_ns(phases, "serve/epoch_apply") == 4_000_000
        assert self_ns(phases, "serve") == 1_000_000  # grandchildren not double-counted
        buf = io.StringIO()
        render(label, phases, peak, out=buf)
        assert "    inc/repair" in buf.getvalue(), buf.getvalue()
        # Cross-thread oversubscription clamps, never goes negative.
        phases["serve/epoch_apply"]["ns"] = 1_000_000
        assert self_ns(phases, "serve/epoch_apply") == 0
        # Fleet records: orphaned fleet/* phases group under a synthesized
        # rollup, and the exported counters derive the summary lines.
        fleet_rec = {
            "name": "BM_FleetZipfEdits", "n": 1048576, "strategy": "zipf",
            "threads": 0, "ms": 3.0,
            "profile": {
                "fleet/route": {"ns": 1_000_000, "count": 4096, "flops": 0,
                                "bytes": 0},
                "fleet/fault_in": {"ns": 2_000_000, "count": 8, "flops": 0,
                                   "bytes": 0},
                "fleet/evict": {"ns": 4_000_000_000, "count": 4000,
                                "flops": 0, "bytes": 0},
                "fleet/cold_batch": {"ns": 3_000_000, "count": 2, "flops": 0,
                                     "bytes": 0}},
            "counters": {"instances": 50000.0, "warm": 1024.0,
                         "warm_bytes": 2_000_000.0, "evictions": 4000.0,
                         "faults": 3900.0, "p99_us": 12.5}}
        fpath = os.path.join(tmp, "fleet.json")
        with open(fpath, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(fleet_rec) + "\n")
        flabels, _ = load([fpath])
        flabel, fphases, fcounters, _fmeta = flabels[0]
        assert fcounters["p99_us"] == 12.5, fcounters
        grouped = group_orphans(fphases)
        assert grouped["fleet"]["ns"] == 4_006_000_000, grouped
        assert self_ns(grouped, "fleet") == 0  # rollup nets to zero self
        lines = fleet_summary(grouped, fcounters)
        # 4000 evictions over 4 s of fleet/evict -> 1,000/s.
        assert any("1,000/s" in l for l in lines), lines
        assert any("view p99 12.5 us" in l for l in lines), lines
        assert any("warm 1,024 of 50,000" in l for l in lines), lines
        buf = io.StringIO()
        render(flabel, fphases, None, out=buf, counters=fcounters)
        text = buf.getvalue()
        assert "  route" in text and "  evict" in text, text  # grouped rows
        assert "fleet: " in text, text
        # Non-fleet records stay summary-free.
        assert fleet_summary(phases, {}) == [], "non-fleet must not summarize"

        # Pooled warm-fan records: the per-barrier line splits the fan wall
        # into dispatch vs epoch_wait, and /t<k> families get a scaling
        # section anchored on the (fan-phase-free, poolless) t1 lane.
        def fan_rec(width, ms, with_fan):
            prof = {"fleet/route": {"ns": 500_000, "count": 256, "flops": 0,
                                    "bytes": 0}}
            if with_fan:
                prof["fleet/warm_fan"] = {"ns": 2_000_000, "count": 10,
                                          "flops": 0, "bytes": 0}
                prof["fleet/epoch_wait"] = {"ns": 8_000_000, "count": 10,
                                            "flops": 0, "bytes": 0}
            return {"name": "BM_FleetConcurrentEdits", "n": 0,
                    "strategy": f"zipf/t{width}", "threads": 1, "ms": ms,
                    "profile": prof}
        spath = os.path.join(tmp, "scaling.json")
        with open(spath, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(fan_rec(1, 12.0, False)) + "\n")
            fh.write(json.dumps(fan_rec(4, 4.0, True)) + "\n")
        slabels, _ = load([spath])
        _, s4_phases, _, _ = slabels[1]
        fan_lines = fleet_summary(s4_phases, {})
        # 10 barriers, (2ms + 8ms)/10 = 1.000 ms/barrier, wait = 80% of fan.
        assert any("10 barriers" in l and "1.000 ms/barrier" in l
                   and "80% of fan wall" in l for l in fan_lines), fan_lines
        slines = warm_fan_scaling(slabels)
        # 12ms / 4ms = 3x at width 4 -> 75% parallel efficiency.
        assert len(slines) == 1, slines
        assert "3.00x vs t1" in slines[0] and "efficiency 75%" in slines[0], slines
        # No t1 anchor -> no scaling section (never divides by zero).
        assert warm_fan_scaling(slabels[1:]) == [], "t1 anchor required"
    print("profile_report selftest: ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BENCH_*.json record files")
    parser.add_argument("--peak", type=float, default=None,
                        help="machine peak GB/s (overrides machine_peak records)")
    parser.add_argument("--top", type=int, default=0,
                        help="only the k phases with the largest self time (0 = all)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.files:
        parser.error("at least one BENCH_*.json file is required (or --selftest)")

    labels, file_peak = load(args.files)
    peak = args.peak if args.peak else file_peak
    if peak:
        print(f"machine peak: {peak:.2f} GB/s (STREAM triad)")
    else:
        print("machine peak: unknown — run bench_machine_peak --json into the same "
              "file, or pass --peak")
    print()
    if not labels:
        print("no profile objects found — build with -DSFCP_PROFILE=ON and rerun "
              "the bench with --json")
        return 0
    for label, phases, counters, _meta in labels:
        render(label, phases, peak, top=args.top, counters=counters)
    scaling = warm_fan_scaling(labels)
    if scaling:
        print("warm-fan threads-scaling (speedup vs the t1 lane):")
        for line in scaling:
            print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
