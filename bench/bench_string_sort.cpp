// E4 — lexicographic string sorting (Lemma 3.8): the paper's parallel
// fold-and-rank algorithm vs std::stable_sort and MSD radix quicksort,
// across length distributions.
#include <benchmark/benchmark.h>

#include "strings/string_sort.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

const char* dist_name(util::LengthDistribution d) {
  switch (d) {
    case util::LengthDistribution::Uniform: return "uniform";
    case util::LengthDistribution::ManyShort: return "many_short";
    case util::LengthDistribution::FewLong: return "few_long";
    default: return "pow2";
  }
}

template <strings::StringSortStrategy S>
void BM_StringSort(benchmark::State& state) {
  const std::size_t total = static_cast<std::size_t>(state.range(0));
  const auto dist = static_cast<util::LengthDistribution>(state.range(1));
  util::Rng rng(total + state.range(1));
  const auto list = util::random_string_list(total / 8, total, 1 << 16, dist, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strings::sort_strings(list, S));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(total));
  state.SetLabel(dist_name(dist));
}

BENCHMARK(BM_StringSort<strings::StringSortStrategy::StdSort>)
    ->ArgsProduct({{1 << 14, 1 << 18, 1 << 20}, {0, 1, 2, 3}});
BENCHMARK(BM_StringSort<strings::StringSortStrategy::MsdRadix>)
    ->ArgsProduct({{1 << 14, 1 << 18, 1 << 20}, {0, 1, 2, 3}});
BENCHMARK(BM_StringSort<strings::StringSortStrategy::Parallel>)
    ->ArgsProduct({{1 << 14, 1 << 18, 1 << 20}, {0, 1, 2, 3}});

}  // namespace
