#pragma once
// Prefix sums (scans) — the workhorse primitive behind compaction, radix
// sorting and the Euler-tour computations.  Blocked two-pass parallel
// implementation: per-block partial sums, sequential scan over block sums,
// per-block rewrite.  O(n) work, O(n/p + p) depth.

#include <cstddef>
#include <span>
#include <vector>

#include "pram/parallel_for.hpp"
#include "pram/types.hpp"

namespace sfcp::prim {

/// Exclusive prefix sum: out[i] = init + sum(in[0..i)).  Returns the total
/// (init + sum of all elements).  `out` may alias `in`.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out, T init = T{}) {
  const std::size_t n = in.size();
  const int nb = pram::num_blocks(n);
  std::vector<T> block_sum(static_cast<std::size_t>(nb) + 1, T{});
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T s{};
    for (std::size_t i = lo; i < hi; ++i) s += in[i];
    block_sum[static_cast<std::size_t>(b) + 1] = s;
  });
  block_sum[0] = init;
  for (int b = 1; b <= nb; ++b) block_sum[b] += block_sum[b - 1];
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T s = block_sum[static_cast<std::size_t>(b)];
    for (std::size_t i = lo; i < hi; ++i) {
      const T v = in[i];
      out[i] = s;
      s += v;
    }
  });
  return block_sum[static_cast<std::size_t>(nb)];
}

/// Inclusive prefix sum: out[i] = init + sum(in[0..i]).  Returns the total.
template <typename T>
T inclusive_scan(std::span<const T> in, std::span<T> out, T init = T{}) {
  const std::size_t n = in.size();
  const int nb = pram::num_blocks(n);
  std::vector<T> block_sum(static_cast<std::size_t>(nb) + 1, T{});
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T s{};
    for (std::size_t i = lo; i < hi; ++i) s += in[i];
    block_sum[static_cast<std::size_t>(b) + 1] = s;
  });
  block_sum[0] = init;
  for (int b = 1; b <= nb; ++b) block_sum[b] += block_sum[b - 1];
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T s = block_sum[static_cast<std::size_t>(b)];
    for (std::size_t i = lo; i < hi; ++i) {
      s += in[i];
      out[i] = s;
    }
  });
  return block_sum[static_cast<std::size_t>(nb)];
}

/// Segmented inclusive sum scan: the running sum restarts at every i with
/// seg_start[i] != 0.  Used for per-tree Euler-tour prefix sums.
template <typename T>
void segmented_inclusive_scan(std::span<const T> in, std::span<const u8> seg_start,
                              std::span<T> out) {
  const std::size_t n = in.size();
  const int nb = pram::num_blocks(n);
  // carry[b] propagates into block b+1 only if block b+1's prefix has no
  // segment start before the point of use; handled by tracking, per block,
  // the sum since the last segment start and whether the block saw one.
  std::vector<T> tail_sum(static_cast<std::size_t>(nb), T{});
  std::vector<u8> has_start(static_cast<std::size_t>(nb), 0);
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T s{};
    u8 seen = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (seg_start[i]) {
        s = T{};
        seen = 1;
      }
      s += in[i];
    }
    tail_sum[static_cast<std::size_t>(b)] = s;
    has_start[static_cast<std::size_t>(b)] = seen;
  });
  // carry_in[b]: sum flowing into block b from preceding blocks.
  std::vector<T> carry_in(static_cast<std::size_t>(nb), T{});
  T carry{};
  for (int b = 0; b < nb; ++b) {
    carry_in[static_cast<std::size_t>(b)] = carry;
    carry = has_start[static_cast<std::size_t>(b)]
                ? tail_sum[static_cast<std::size_t>(b)]
                : carry + tail_sum[static_cast<std::size_t>(b)];
  }
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T s = carry_in[static_cast<std::size_t>(b)];
    for (std::size_t i = lo; i < hi; ++i) {
      if (seg_start[i]) s = T{};
      s += in[i];
      out[i] = s;
    }
  });
}

/// Parallel sum reduction.
template <typename T>
T reduce_sum(std::span<const T> in) {
  const std::size_t n = in.size();
  const int nb = pram::num_blocks(n);
  std::vector<T> block_sum(static_cast<std::size_t>(nb), T{});
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T s{};
    for (std::size_t i = lo; i < hi; ++i) s += in[i];
    block_sum[static_cast<std::size_t>(b)] = s;
  });
  T total{};
  for (const T& s : block_sum) total += s;
  return total;
}

/// Parallel min reduction; returns the minimum value (UB on empty input).
template <typename T>
T reduce_min(std::span<const T> in) {
  const std::size_t n = in.size();
  const int nb = pram::num_blocks(n);
  std::vector<T> block_min(static_cast<std::size_t>(nb));
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T m = in[lo];
    for (std::size_t i = lo + 1; i < hi; ++i) m = std::min(m, in[i]);
    block_min[static_cast<std::size_t>(b)] = m;
  });
  T m = block_min[0];
  for (const T& v : block_min) m = std::min(m, v);
  return m;
}

/// Parallel max reduction; returns the maximum value (UB on empty input).
template <typename T>
T reduce_max(std::span<const T> in) {
  const std::size_t n = in.size();
  const int nb = pram::num_blocks(n);
  std::vector<T> block_max(static_cast<std::size_t>(nb));
  pram::parallel_blocks(n, [&](int b, std::size_t lo, std::size_t hi) {
    T m = in[lo];
    for (std::size_t i = lo + 1; i < hi; ++i) m = std::max(m, in[i]);
    block_max[static_cast<std::size_t>(b)] = m;
  });
  T m = block_max[0];
  for (const T& v : block_max) m = std::max(m, v);
  return m;
}

// Convenience non-template entry points (defined in scan.cpp).
u64 exclusive_scan_u32(std::span<const u32> in, std::span<u64> out);
u32 reduce_min_u32(std::span<const u32> in);
u32 reduce_max_u32(std::span<const u32> in);

}  // namespace sfcp::prim
