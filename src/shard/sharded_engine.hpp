#pragma once
// ShardedEngine — component-parallel serving: the node space split across k
// shards, each owning a warm inc::IncrementalSolver, behind the same
// sfcp::Engine surface as "batch" and "incremental".
//
// The coarsest-partition problem is embarrassingly component-parallel:
// Q(v) is a function of v's infinite label string B(v) B(f(v)) ..., which
// never leaves v's weakly-connected component — so edits inside one
// component cannot change class membership in another.  The engine
// therefore partitions components across shards (size-balanced, largest
// first), routes apply() edits to shards by node id, and repairs dirty
// shards concurrently with pram::parallel_for under the session's
// ExecutionContext:
//
//   shard::ShardedEngine eng(std::move(inst));       // k = 8 shards
//   eng.apply(edits);                                // shard-parallel repair
//   sfcp::core::PartitionView v = eng.view();        // one global partition
//
// What locality cannot give for free is the cross-shard coupling: a cycle
// in shard 2 whose reduced B-string equals a cycle's in shard 5 is ONE
// global class, and tree classes chaining onto them must merge too.  The
// merge layer reconciles per-shard partitions at class granularity: each
// live raw label of a shard solver holds one refcounted reference into a
// global map — cycle classes keyed by their reduced B-string (smallest
// period + minimal rotation), tree classes by their (B, Q∘f) signature
// resolved in dependency order — the same coinductive characterization the
// incremental solver applies per node, lifted to classes.  Reconciliation
// is lazy, per-shard and DELTA-DRIVEN: view() flushes each dirty shard's
// inc::RepairDelta and updates only the classes the delta names as created
// or destroyed (resized classes provably keep their identity, see
// inc/repair_delta.hpp), so merge maintenance costs O(dirty classes) per
// view — not O(dirty shards), let alone O(n) — and the result is published
// as a COW patch carrying exactly the delta's relabelled nodes.  Canonical
// labels stay byte-identical to core::solve on the whole instance while
// untouched classes cost nothing; a shard whose delta went through a
// rebuild (or a freshly migrated/restored shard) falls back to a full
// requotient of that one shard.
//
// Rebalancing: an edit set_f(x, y) with x and y in different shards drags
// x's whole component into y's shard.  Under the ReshardPolicy cost model
// (mirroring inc::RepairPolicy) the engine either migrates that component
// (rebuilding just the two affected shards) or, when the component is too
// large or the shards drift out of balance, falls back to a full re-shard.
// Either way reader-held views are immutable snapshots — migration never
// touches them.
//
// Persistence: checkpoints use the `sfcp-checkpoint v1` family with the
// sharded magic (util/io.hpp): shard assignments plus one embedded
// per-shard solver checkpoint each, so a serving process restarts warm
// with the same shard layout.  sfcp::load_engine_checkpoint() autodetects
// plain vs. sharded streams.
//
// Thread-safety matches inc::IncrementalSolver: one ShardedEngine per
// thread; views, once obtained, are freely shareable.

#include <iosfwd>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine.hpp"
#include "inc/incremental_solver.hpp"

namespace sfcp::shard {

/// Cost model deciding component migration vs. full re-shard — the
/// shard-level sibling of inc::RepairPolicy, with the same two modes:
/// static (migrate iff the component fits the fraction budget) or adaptive
/// (the migrate-vs-reshard crossover is fitted online from observed costs —
/// wall ns per migrated node vs. wall ns per full re-shard — in a
/// pram::CostModel; the construction shard pass anchors the re-shard side).
struct ReshardPolicy {
  /// A cross-shard edit migrates the affected component iff it has at most
  /// max(min_migrate_absolute, max_migrate_fraction * n) nodes.
  double max_migrate_fraction = 0.25;
  std::size_t min_migrate_absolute = 64;
  /// After a migration, re-shard when the largest shard exceeds
  /// max_imbalance times the mean shard size.
  double max_imbalance = 4.0;
  /// Fit the migrate-vs-reshard crossover online instead of trusting
  /// max_migrate_fraction.
  bool adaptive = false;
  /// EWMA smoothing for the adaptive cost fit.
  double ewma_alpha = 0.25;

  std::size_t migrate_budget(std::size_t n) const {
    const auto frac = static_cast<std::size_t>(max_migrate_fraction * static_cast<double>(n));
    const std::size_t cap = frac > min_migrate_absolute ? frac : min_migrate_absolute;
    return cap < n ? cap : n;
  }
  /// The budget the engine actually uses: the fitted crossover in adaptive
  /// mode (clamped to [min_migrate_absolute, n]), else the static formula.
  std::size_t migrate_budget(std::size_t n, const pram::CostModel& fit) const {
    return adaptive ? fit.budget(n, min_migrate_absolute, migrate_budget(n))
                    : migrate_budget(n);
  }
  bool balanced(std::size_t largest, std::size_t n, std::size_t k) const {
    if (k <= 1 || n == 0) return true;
    return static_cast<double>(largest) * static_cast<double>(k) <=
           max_imbalance * static_cast<double>(n);
  }
};

struct ShardOptions {
  std::size_t shards = 8;     ///< shard count (0 is treated as 1; empty shards are fine)
  ReshardPolicy reshard{};
  inc::RepairPolicy repair{}; ///< per-shard solver repair policy
};

/// Lifetime counters (monotonic), mirroring inc::EditStats one level up.
struct ShardStats {
  u64 cross_shard_edits = 0; ///< set_f edits that rewired f across shards
  u64 migrations = 0;        ///< components moved between two shards
  u64 reshards = 0;          ///< full re-shards (cost-model fallback)
  u64 shard_merges = 0;      ///< per-shard reconciliations performed by view()
  u64 merged_views = 0;      ///< global views published
  // O(dirty classes) accounting — what the per-class merge actually paid:
  u64 full_merges = 0;            ///< reconciliations that requotiented a whole shard
  u64 merge_touched_classes = 0;  ///< classes processed by per-class reconciliation
  u64 merge_touched_nodes = 0;    ///< nodes carried in per-class merge deltas
};

class ShardedEngine final : public Engine {
 public:
  /// Takes ownership of the instance, partitions its components across
  /// sopt.shards shards and solves each once (validates; throws
  /// std::invalid_argument on malformed input).
  explicit ShardedEngine(graph::Instance inst, core::Options opt = core::Options::parallel(),
                         pram::ExecutionContext ctx = {}, ShardOptions sopt = {});

  std::string_view kind() const noexcept override { return "sharded"; }
  const graph::Instance& instance() const noexcept override { return inst_; }
  u64 epoch() const noexcept override { return epoch_; }

  /// One global partition over all shards, canonical labels byte-identical
  /// to core::solve on the current instance.  Flushes the repair deltas of
  /// the shards edited since the previous view, updates the global merge
  /// maps per created/destroyed class, and publishes the result as a patch
  /// carrying exactly the deltas' relabelled nodes — O(dirty classes); the
  /// view itself is an immutable snapshot isolated from later edits and
  /// migrations.
  core::PartitionView view() override;

  /// Applies edits in order: intra-shard runs fan out across shards in
  /// parallel; a cross-shard set_f triggers component migration or a full
  /// re-shard per the ReshardPolicy.  All edits are validated up front.
  void apply(std::span<const inc::Edit> edits) override;

  bool checkpointable() const noexcept override { return true; }

  /// Writes an `sfcp-checkpoint v1` stream with the sharded magic: the
  /// shard assignment plus each shard solver's embedded checkpoint.
  bool save_checkpoint(std::ostream& os) const override;

  /// Restores an engine from a save_checkpoint()ed stream.  The shard
  /// COUNT and assignment come from the stream; sopt supplies only the
  /// policies (sopt.shards is ignored), matching IncrementalSolver::load's
  /// caller-owns-the-configuration contract.  Throws std::runtime_error on
  /// malformed, truncated or inconsistent input.
  static std::unique_ptr<ShardedEngine> load(std::istream& is,
                                             core::Options opt = core::Options::parallel(),
                                             pram::ExecutionContext ctx = {},
                                             ShardOptions sopt = {});

  /// load() for dispatchers that already consumed and checked the 8-byte
  /// sharded magic (sfcp::load_engine_checkpoint).
  static std::unique_ptr<ShardedEngine> load_body(std::istream& is,
                                                  core::Options opt = core::Options::parallel(),
                                                  pram::ExecutionContext ctx = {},
                                                  ShardOptions sopt = {});

  // ---- introspection (tests, benches, serving stats) ----------------------

  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Shard currently owning node x.  Throws std::out_of_range.
  u32 shard_of(u32 x) const;
  std::size_t shard_size(std::size_t s) const { return shards_.at(s).nodes.size(); }
  const inc::IncrementalSolver& shard_solver(std::size_t s) const { return *shards_.at(s).solver; }
  const ShardStats& stats() const noexcept { return stats_; }
  ReshardPolicy& reshard_policy() noexcept { return reshard_; }
  /// The observed migrate-vs-reshard cost fit (units = migrated nodes).
  const pram::CostModel& reshard_fit() const noexcept { return reshard_fit_; }

  EngineStats serving_stats() const override;

  /// Sum of the shard solvers' estimates plus a coarse per-node merge-map
  /// overhead (assignment stakes + global label maps).
  std::size_t footprint_bytes() const noexcept override {
    std::size_t bytes = size() * 24;
    for (const ShardState& s : shards_) {
      if (s.solver) bytes += s.solver->footprint_bytes();
    }
    return bytes;
  }

  /// Notification window across the global views published since the last
  /// take (inc::ViewDelta semantics: relabelled global nodes, or a
  /// whole-partition downgrade when any view re-rooted).
  inc::ViewDelta take_view_delta() override;

  /// Installs the session worker pool on the engine context AND every warm
  /// shard solver, so dirty-shard repairs enqueue straight onto persistent
  /// workers (one SPSC lane per `shard % pool->width()`) instead of paying
  /// an OpenMP team start per apply().  Shards built later (reshard,
  /// migration, load) inherit it via ctx_.
  void install_pool(pram::WorkerPool* pool) override;

  /// Rebinds the work/depth sink on the engine context and every warm shard
  /// solver (same copy-at-construction rationale as install_pool).
  void set_metrics(pram::Metrics* m) override;

 private:
  /// One live raw local label's stake in the global merge maps.
  struct Assign {
    u32 global = kNone;  ///< global raw label (kNone = unassigned)
    u8 kind = 0;         ///< 0 unassigned, 1 cycle class, 2 signature
    const std::vector<u32>* ckey = nullptr;  ///< kind 1: key held in gclasses_
    u64 sig = 0;                             ///< kind 2: key held in gsigs_
  };
  struct ShardState {
    std::vector<u32> nodes;  ///< local id -> global id, strictly ascending
    std::unique_ptr<inc::IncrementalSolver> solver;
    u64 seen_epoch = 0;  ///< solver epoch already folded into the global clock
    bool dirty = true;   ///< needs reconciliation before the next merged view
    bool full = true;    ///< next reconciliation must requotient from scratch
    core::ViewCounters counters;    ///< solver counters at the last reconcile
    std::vector<Assign> label_global;  ///< indexed by local raw label
  };
  struct GlobalCycleClass {
    std::vector<u32> labels;  ///< global label of phase t, size = period
    u32 refs = 0;             ///< local labels holding this reduced string
  };
  struct GlobalSig {
    u32 label = 0;
    u32 refs = 0;
  };
  using GlobalCycleMap = std::unordered_map<std::vector<u32>, GlobalCycleClass, U32VecHash>;
  /// Last gclasses_ entry acquire_cycle_ resolved, keyed by the solver-side
  /// key's data pointer: the p phase labels of one created cycle class
  /// probe the same key, so consecutive acquisitions skip the key copy and
  /// hash (O(p) instead of O(p^2) per created class).  Holds a pointer to
  /// the entry, not an iterator — rehashes invalidate iterators but never
  /// entry addresses, and no erase can run between acquisitions (releases
  /// happen strictly after all acquires in a reconcile).
  struct CycleCache {
    const u32* key_data = nullptr;
    GlobalCycleMap::value_type* entry = nullptr;
  };
  struct LoadTag {};

  ShardedEngine(LoadTag, core::Options opt, pram::ExecutionContext ctx, ShardOptions sopt);

  bool cross_shard_(const inc::Edit& e) const {
    return e.kind == inc::Edit::Kind::SetF && shard_of_[e.node] != shard_of_[e.value];
  }
  void apply_segment_(std::span<const inc::Edit> seg);
  void apply_cross_shard_(const inc::Edit& e);
  void reshard_all_();
  void rebuild_shard_(std::size_t s);
  /// Flushes shard s's delta, updates the merge maps (per-class, or a full
  /// requotient when owed), and — when collect_patch — appends the shard's
  /// contribution to the next view's patch.
  void reconcile_shard_(std::size_t s, bool collect_patch, std::vector<u32>& patch_nodes,
                        std::vector<u32>& patch_labels);
  /// Per-class map update from one repair delta; returns false (no partial
  /// state left behind beyond acquired refs, which requotient releases) if
  /// an invariant does not hold and the shard needs a full requotient.
  bool apply_label_delta_(std::size_t s, const inc::RepairDelta& d);
  /// Rebuilds shard s's label_global from scratch (acquire-new before
  /// release-old, so classes shared with the previous assignment keep their
  /// global labels).
  void requotient_full_(std::size_t s);
  void acquire_cycle_(const inc::IncrementalSolver& sol, u32 rep, u32 local_label,
                      Assign& slot, CycleCache& cache);
  void acquire_sig_(u32 b_value, u32 f_global, Assign& slot);
  void release_assign_(Assign& a);
  void reset_global_maps_();
  u32 fresh_global_() {
    ++live_globals_;
    return next_global_++;
  }

  graph::Instance inst_;  ///< the global instance, kept current under edits
  core::Options opt_;
  pram::ExecutionContext ctx_;
  inc::RepairPolicy repair_;
  ReshardPolicy reshard_;

  std::vector<ShardState> shards_;
  std::vector<u32> shard_of_;  ///< per global node
  std::vector<u32> local_of_;  ///< per global node: index within its shard

  // Global class-reconciliation maps (class-granular analogues of the
  // incremental solver's per-node maps):
  GlobalCycleMap gclasses_;
  std::unordered_map<u64, GlobalSig> gsigs_;
  u32 next_global_ = 0;   ///< fresh-label high-water mark (raw_bound of views)
  u32 live_globals_ = 0;  ///< live distinct global labels (= num_classes)

  u64 epoch_ = 0;
  core::PartitionView last_view_;
  bool root_stale_ = true;

  // Notification window (take_view_delta): global nodes the published
  // views' patches carried; full when any of them was a fresh root.
  std::vector<u32> view_delta_nodes_;
  bool view_delta_full_ = true;

  pram::CostModel reshard_fit_;  ///< migrate-vs-reshard fit (units = moved nodes)
  // Migrations and reshards replace shard solvers; their lifetime counters
  // are absorbed here first so serving_stats() never loses history.
  inc::EditStats retired_edits_;
  inc::DeltaStats retired_deltas_;

  // Reused buffers (apply fan-out + reconciliation scratch).
  std::vector<std::vector<inc::Edit>> bucket_buf_;
  std::vector<u32> active_buf_;
  std::vector<std::size_t> dirty_buf_;
  std::vector<u32> rep_buf_, chain_buf_, patch_nodes_buf_, patch_labels_buf_;
  ShardStats stats_;
};

}  // namespace sfcp::shard
