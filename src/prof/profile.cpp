#include "prof/profile.hpp"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <ostream>

namespace sfcp::prof {

namespace detail {

namespace {
std::atomic<Profiler*> g_default{nullptr};
std::atomic<u64> g_next_id{1};
}  // namespace

Profiler* default_profiler() noexcept { return g_default.load(std::memory_order_acquire); }
void set_default_profiler(Profiler* p) noexcept { g_default.store(p, std::memory_order_release); }

}  // namespace detail

// ---------------------------------------------------------------- Profiler

Profiler::Profiler() : id_(detail::g_next_id.fetch_add(1, std::memory_order_relaxed)) {}

Profiler::~Profiler() {
  if (detail::default_profiler() == this) detail::set_default_profiler(nullptr);
}

Profiler::ThreadBuf* Profiler::local_buf_() {
  // Keyed by the process-unique profiler id, never its address: ids are
  // never reused, so a stale cache entry for a destroyed profiler can never
  // alias a new one.
  thread_local std::unordered_map<u64, ThreadBuf*> cache;
  auto it = cache.find(id_);
  if (it != cache.end()) return it->second;
  std::lock_guard<std::mutex> lock(mu_);
  bufs_.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf* buf = bufs_.back().get();
  cache.emplace(id_, buf);
  return buf;
}

ProfileTree Profiler::snapshot() const {
  std::unordered_map<std::string, PhaseNode> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : bufs_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      for (const auto& [path, node] : buf->phases) {
        PhaseNode& m = merged[path];
        m.path = path;
        m.ns += node.ns;
        m.count += node.count;
        m.flops += node.flops;
        m.bytes += node.bytes;
      }
    }
  }
  ProfileTree tree;
  tree.phases.reserve(merged.size());
  for (auto& [path, node] : merged) tree.phases.push_back(std::move(node));
  std::sort(tree.phases.begin(), tree.phases.end(),
            [](const PhaseNode& a, const PhaseNode& b) { return a.path < b.path; });
  return tree;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->phases.clear();
  }
}

// ------------------------------------------------------------------- Scope

#if defined(SFCP_PROFILE)

Scope::Scope(const char* name) {
  Profiler* p = session_profiler();
  if (p == nullptr) return;
  buf_ = p->local_buf_();
  saved_len_ = buf_->path.size();
  if (!buf_->path.empty()) buf_->path.push_back('/');
  buf_->path.append(name);
  parent_ = detail::tls_scope;
  detail::tls_scope = this;
  start_ = now_ns();  // last: exclude our own setup from the charged window
}

Scope::~Scope() {
  if (buf_ == nullptr) return;
  const u64 dur = now_ns() - start_;
  {
    std::lock_guard<std::mutex> lock(buf_->mu);
    PhaseNode& node = buf_->phases[buf_->path];
    if (node.path.empty()) node.path = buf_->path;
    node.ns += dur;
    node.count += 1;
    node.flops += flops_;
    node.bytes += bytes_;
  }
  buf_->path.resize(saved_len_);
  detail::tls_scope = parent_;
}

#endif  // SFCP_PROFILE

// ------------------------------------------------------------- ProfileTree

const PhaseNode* ProfileTree::find(std::string_view path) const noexcept {
  for (const PhaseNode& n : phases)
    if (n.path == path) return &n;
  return nullptr;
}

u64 ProfileTree::ns_of(std::string_view path) const noexcept {
  const PhaseNode* n = find(path);
  return n != nullptr ? n->ns : 0;
}

void ProfileTree::render(std::ostream& os, double peak_gbps) const {
  if (phases.empty()) {
    os << "(empty profile — build with -DSFCP_PROFILE=ON and install a prof::Profiler)\n";
    return;
  }
  std::vector<PhaseNode> sorted = phases;  // defensive: wire trees may arrive unsorted
  std::sort(sorted.begin(), sorted.end(),
            [](const PhaseNode& a, const PhaseNode& b) { return a.path < b.path; });

  // Paths may skip levels ("serve/epoch_apply/inc/dirty_region" with no
  // recorded "serve/epoch_apply/inc"), so the tree is built over RECORDED
  // ancestors: each node hangs off its nearest recorded proper prefix, its
  // label is the remaining path, and self-time subtracts the maximal
  // recorded descendants (those with no recorded ancestor in between).
  // A proper prefix sorts before its descendants, so one pass suffices.
  std::unordered_map<std::string_view, int> depth_of;
  std::vector<int> depths(sorted.size(), 0);
  std::vector<std::string_view> labels(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const std::string_view path = sorted[i].path;
    labels[i] = path;
    for (std::size_t pos = path.rfind('/'); pos != std::string_view::npos && pos > 0;
         pos = path.rfind('/', pos - 1)) {
      const auto it = depth_of.find(path.substr(0, pos));
      if (it != depth_of.end()) {
        depths[i] = it->second + 1;
        labels[i] = path.substr(pos + 1);
        break;
      }
    }
    depth_of.emplace(path, depths[i]);
  }

  os << std::left << std::setw(34) << "phase" << std::right << std::setw(9) << "count"
     << std::setw(12) << "total ms" << std::setw(12) << "self ms" << std::setw(10) << "GB/s"
     << std::setw(10) << "GFLOP/s";
  if (peak_gbps > 0.0) os << std::setw(8) << "%peak";
  os << '\n';

  const auto old_flags = os.flags();
  const auto old_prec = os.precision();
  os << std::fixed;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const PhaseNode& n = sorted[i];
    const std::string prefix = n.path + "/";
    u64 child_ns = 0;
    for (std::size_t j = i + 1;
         j < sorted.size() && sorted[j].path.compare(0, prefix.size(), prefix) == 0;) {
      child_ns += sorted[j].ns;  // a maximal descendant; skip ITS subtree
      const std::string sub = sorted[j].path + "/";
      for (++j; j < sorted.size() && sorted[j].path.compare(0, sub.size(), sub) == 0; ++j) {
      }
    }
    const u64 self_ns = n.ns > child_ns ? n.ns - child_ns : 0;  // cross-thread clamp

    std::string label(static_cast<std::size_t>(2 * depths[i]), ' ');
    label += labels[i];
    os << std::left << std::setw(34) << label << std::right << std::setw(9) << n.count
       << std::setw(12) << std::setprecision(3) << static_cast<double>(n.ns) / 1e6
       << std::setw(12) << std::setprecision(3) << static_cast<double>(self_ns) / 1e6;
    // bytes/ns == GB/s exactly; flops/ns == GFLOP/s.
    if (n.bytes > 0 && n.ns > 0)
      os << std::setw(10) << std::setprecision(2)
         << static_cast<double>(n.bytes) / static_cast<double>(n.ns);
    else
      os << std::setw(10) << "-";
    if (n.flops > 0 && n.ns > 0)
      os << std::setw(10) << std::setprecision(2)
         << static_cast<double>(n.flops) / static_cast<double>(n.ns);
    else
      os << std::setw(10) << "-";
    if (peak_gbps > 0.0) {
      if (n.bytes > 0 && n.ns > 0)
        os << std::setw(7) << std::setprecision(1)
           << 100.0 * (static_cast<double>(n.bytes) / static_cast<double>(n.ns)) / peak_gbps << '%';
      else
        os << std::setw(8) << "-";
    }
    os << '\n';
  }
  os.flags(old_flags);
  os.precision(old_prec);
}

// ----------------------------------------------------------------- session

ProfileTree session_snapshot() {
  Profiler* p = session_profiler();
  return p != nullptr ? p->snapshot() : ProfileTree{};
}

}  // namespace sfcp::prof
