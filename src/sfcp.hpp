#pragma once
// Umbrella header: the full public API of the sfcp library.
//
//   #include "sfcp.hpp"
//
//   sfcp::graph::Instance inst = ...;           // A_f and A_B
//   sfcp::core::Result r = sfcp::core::solve(inst);
//   // r.q[x] == r.q[y]  iff  x and y are in the same block of the
//   // coarsest f-stable refinement of B.

#include "core/baselines.hpp"
#include "core/coarsest_partition.hpp"
#include "core/cycle_labeling.hpp"
#include "core/moore.hpp"
#include "core/multi_function.hpp"
#include "core/partition_algebra.hpp"
#include "core/trace.hpp"
#include "core/tree_labeling.hpp"
#include "core/verify.hpp"
#include "graph/cycle_detect.hpp"
#include "graph/cycle_structure.hpp"
#include "graph/euler_tour.hpp"
#include "graph/functional_graph.hpp"
#include "graph/orbits.hpp"
#include "graph/rooted_forest.hpp"
#include "pram/config.hpp"
#include "pram/metrics.hpp"
#include "pram/types.hpp"
#include "prim/compact.hpp"
#include "prim/find_first.hpp"
#include "prim/hash_table.hpp"
#include "prim/integer_sort.hpp"
#include "prim/list_ranking.hpp"
#include "prim/merge.hpp"
#include "prim/rename.hpp"
#include "prim/scan.hpp"
#include "strings/lyndon.hpp"
#include "strings/matching.hpp"
#include "strings/msp.hpp"
#include "strings/necklace.hpp"
#include "strings/period.hpp"
#include "strings/string_sort.hpp"
#include "strings/suffix_array.hpp"
#include "util/dot_export.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
