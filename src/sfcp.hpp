#pragma once
// Umbrella header: the full public API of the sfcp library.
//
//   #include "sfcp.hpp"
//
// Solving (the session API): construct a Solver once, reuse it.
//
//   sfcp::graph::Instance inst = ...;               // A_f and A_B
//   sfcp::pram::Metrics metrics;
//   sfcp::core::Solver solver(
//       sfcp::registry().at("parallel"),            // strategy by name
//       sfcp::pram::ExecutionContext{}              // per-session knobs:
//           .with_threads(4)                        //   thread budget
//           .with_metrics(&metrics));               //   isolated work counters
//   sfcp::core::PartitionView v = solver.solve_view(inst);
//
// Querying (the read surface): every producer hands back an immutable,
// shareable core::PartitionView — O(1) class_of/same_class/class_size, a
// lazily-built CSR members index, class iteration, and an epoch() stamp.
//
//   v.same_class(x, y);                 // iff one block of the coarsest
//                                       // f-stable refinement holds both
//   v.class_members(v.class_of(x));     // that block, ascending
//   for (auto [id, members] : v.classes()) ...
//
// The classic record is still there: Result r = solver.solve(inst) (labels
// in r.q), r.view() to lift it, and core::solve(inst) as the one-shot free
// function.
//
// Serving (edits against a live instance): program against sfcp::Engine and
// pick an implementation from sfcp::engines() — "incremental" repairs the
// dirty region per edit (inc::IncrementalSolver), "batch" re-solves lazily
// per epoch (core::Solver), "sharded" partitions components across k warm
// incremental shards repaired in parallel behind a cross-shard
// class-reconciliation merge (shard::ShardedEngine; shard::ShardOptions
// picks k and the migrate-vs-reshard ReshardPolicy for edits that rewire f
// across shard boundaries).
//
//   auto eng = sfcp::engines().make("incremental", std::move(inst));
//   eng->set_b(x, 3);                         // O(dirty) repair
//   sfcp::core::PartitionView v1 = eng->view();   // O(dirty) snapshot,
//   eng->set_f(y, z);                             // isolated from this edit
//   eng->save_checkpoint(os);                 // sfcp-checkpoint v1: restart
//                                             // warm via
//                                             // sfcp::load_engine_checkpoint
//                                             // (autodetects plain/sharded)
//
// Views taken from an engine are snapshots: edits applied afterwards never
// change a view a reader already holds, and view() after k localized edits
// costs O(dirty region), not O(n) — the canonical renaming is maintained
// incrementally as a patch chain (core/partition_view.hpp).
//
// Dirtiness itself is a first-class value: repairs accumulate an
// inc::RepairDelta (relabelled nodes + created/destroyed/resized classes,
// inc/repair_delta.hpp) that views patch from, the sharded merge layer
// consumes at O(dirty classes), and the adaptive RepairPolicy /
// ReshardPolicy modes fit their repair-vs-rebuild / migrate-vs-reshard
// crossovers from (pram::CostModel; --policy adaptive in sfcp_cli).
// Engine::serving_stats() reports the delta and policy counters.
//
// Serving over the network: serve::Server puts any engine behind a durable
// epoch-batched TCP front end speaking `sfcp-wire v1` (serve/protocol.hpp)
// with an `sfcp-journal v1` write-ahead log + auto-checkpoint recovery
// (serve/journal.hpp); serve::Client is its blocking peer.  `sfcp_cli
// serve`/`connect` drive it from the shell.
//
// Fleet serving (many instances behind one surface): fleet::FleetEngine
// multiplexes up to millions of small instance-keyed engines — open-
// addressed id→slot routing with on-demand factory materialization, a
// bounded warm set whose LRU tail is checkpointed to a cold tier (memory or
// spill dir) and faulted back byte-identically, cold-start floods batched
// through core::Solver::solve_batch, and per-instance arrays drawn from a
// shared fleet::SlabArena (the pram::ExecutionContext::arena hook).  A
// fleet-mode serve::Server speaks FLEET_EDIT/FLEET_VIEW and journals per-
// instance records; `sfcp_cli fleet` serves one from the shell and the
// connect REPL routes with `instance <id>` — see fleet/fleet_engine.hpp.
//
// Strategy selection: sfcp::registry() enumerates every cycle-detect x
// cycle-structure x tree-labelling combination ("euler-jump-level", ...)
// plus the "parallel" and "sequential" aliases — see core/registry.hpp.
// Execution configuration: pram::ExecutionContext (threads, grain, metrics
// sink, RNG seed) installs thread-locally, so concurrent sessions with
// different settings never interfere — see pram/execution_context.hpp.
//
// Profiling (builds configured with -DSFCP_PROFILE=ON): prof::ScopedProfiler
// installs a session profiler, solver/incremental/shard/serve hot paths open
// prof::Scope phases with charged FLOP/byte counts, and the merged
// prof::ProfileTree travels through Engine::serving_stats(), the STATS wire
// frame and bench --json records — rendered as a roofline against the
// bench_machine_peak STREAM measurement by tools/profile_report.py.  In
// default builds every scope compiles out — see prof/profile.hpp.

#include "core/baselines.hpp"
#include "core/coarsest_partition.hpp"
#include "core/cycle_labeling.hpp"
#include "core/moore.hpp"
#include "core/multi_function.hpp"
#include "core/partition_algebra.hpp"
#include "core/partition_view.hpp"
#include "core/registry.hpp"
#include "core/solver.hpp"
#include "core/trace.hpp"
#include "core/tree_labeling.hpp"
#include "core/verify.hpp"
#include "engine.hpp"
#include "fleet/fleet_engine.hpp"
#include "fleet/slab_arena.hpp"
#include "graph/cycle_detect.hpp"
#include "graph/cycle_structure.hpp"
#include "graph/euler_tour.hpp"
#include "graph/functional_graph.hpp"
#include "graph/orbits.hpp"
#include "graph/reverse_adjacency.hpp"
#include "graph/rooted_forest.hpp"
#include "inc/edit.hpp"
#include "inc/incremental_solver.hpp"
#include "inc/repair_delta.hpp"
#include "pram/arena.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "pram/types.hpp"
#include "prim/compact.hpp"
#include "prim/find_first.hpp"
#include "prim/hash_table.hpp"
#include "prim/integer_sort.hpp"
#include "prim/list_ranking.hpp"
#include "prim/merge.hpp"
#include "prim/rename.hpp"
#include "prim/scan.hpp"
#include "prof/clock.hpp"
#include "prof/profile.hpp"
#include "serve/client.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "shard/sharded_engine.hpp"
#include "strings/lyndon.hpp"
#include "strings/matching.hpp"
#include "strings/msp.hpp"
#include "strings/necklace.hpp"
#include "strings/period.hpp"
#include "strings/string_sort.hpp"
#include "strings/suffix_array.hpp"
#include "util/dot_export.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
