// Unit tests for prefix sums, reductions and segmented scans.
#include <gtest/gtest.h>

#include <numeric>

#include "pram/config.hpp"
#include "prim/scan.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using prim::exclusive_scan;
using prim::inclusive_scan;
using prim::reduce_max;
using prim::reduce_min;
using prim::reduce_sum;
using prim::segmented_inclusive_scan;

TEST(Scan, ExclusiveEmpty) {
  std::vector<u32> in, out;
  EXPECT_EQ(exclusive_scan<u32>(in, out), 0u);
}

TEST(Scan, ExclusiveSingle) {
  std::vector<u32> in{7}, out(1);
  EXPECT_EQ(exclusive_scan<u32>(in, out), 7u);
  EXPECT_EQ(out[0], 0u);
}

TEST(Scan, ExclusiveSmall) {
  std::vector<u32> in{1, 2, 3, 4}, out(4);
  EXPECT_EQ(exclusive_scan<u32>(in, out), 10u);
  EXPECT_EQ(out, (std::vector<u32>{0, 1, 3, 6}));
}

TEST(Scan, ExclusiveWithInit) {
  std::vector<u32> in{1, 1, 1}, out(3);
  EXPECT_EQ(exclusive_scan<u32>(in, out, 5u), 8u);
  EXPECT_EQ(out, (std::vector<u32>{5, 6, 7}));
}

TEST(Scan, InclusiveSmall) {
  std::vector<u32> in{1, 2, 3, 4}, out(4);
  EXPECT_EQ(inclusive_scan<u32>(in, out), 10u);
  EXPECT_EQ(out, (std::vector<u32>{1, 3, 6, 10}));
}

TEST(Scan, InPlaceAliasing) {
  std::vector<u32> v{2, 4, 6};
  exclusive_scan<u32>(v, v);
  EXPECT_EQ(v, (std::vector<u32>{0, 2, 6}));
}

TEST(Scan, MatchesStdPartialSum) {
  util::Rng rng(42);
  for (const std::size_t n : {1u, 7u, 100u, 4096u, 100000u}) {
    std::vector<u64> in(n), out(n), ref(n);
    for (auto& v : in) v = rng.below(1000);
    std::partial_sum(in.begin(), in.end(), ref.begin());
    inclusive_scan<u64>(in, out);
    EXPECT_EQ(out, ref) << "n=" << n;
  }
}

TEST(Scan, ParallelMatchesSerialAcrossGrains) {
  util::Rng rng(1);
  std::vector<u64> in(50000);
  for (auto& v : in) v = rng.below(10);
  std::vector<u64> ref(in.size());
  std::partial_sum(in.begin(), in.end(), ref.begin());
  for (const std::size_t grain : {1u, 16u, 1024u, 1u << 20}) {
    pram::ScopedGrain g(grain);
    std::vector<u64> out(in.size());
    inclusive_scan<u64>(in, out);
    EXPECT_EQ(out, ref) << "grain=" << grain;
  }
}

TEST(Reduce, SumMinMax) {
  std::vector<u32> v{5, 3, 9, 1, 7};
  EXPECT_EQ(reduce_sum<u32>(v), 25u);
  EXPECT_EQ(reduce_min<u32>(v), 1u);
  EXPECT_EQ(reduce_max<u32>(v), 9u);
}

TEST(Reduce, SingleElement) {
  std::vector<u32> v{13};
  EXPECT_EQ(reduce_sum<u32>(v), 13u);
  EXPECT_EQ(reduce_min<u32>(v), 13u);
  EXPECT_EQ(reduce_max<u32>(v), 13u);
}

TEST(Reduce, LargeRandomMatchesStd) {
  util::Rng rng(7);
  std::vector<u32> v(123457);
  for (auto& x : v) x = static_cast<u32>(rng.next());
  EXPECT_EQ(reduce_min<u32>(v), *std::min_element(v.begin(), v.end()));
  EXPECT_EQ(reduce_max<u32>(v), *std::max_element(v.begin(), v.end()));
}

std::vector<i64> segmented_reference(const std::vector<i64>& in, const std::vector<u8>& seg) {
  std::vector<i64> out(in.size());
  i64 s = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (seg[i]) s = 0;
    s += in[i];
    out[i] = s;
  }
  return out;
}

TEST(SegmentedScan, Small) {
  std::vector<i64> in{1, 1, 1, 1, 1, 1};
  std::vector<u8> seg{1, 0, 0, 1, 0, 0};
  std::vector<i64> out(6);
  segmented_inclusive_scan<i64>(in, seg, out);
  EXPECT_EQ(out, (std::vector<i64>{1, 2, 3, 1, 2, 3}));
}

TEST(SegmentedScan, NegativeValues) {
  std::vector<i64> in{1, -1, 1, -1};
  std::vector<u8> seg{1, 0, 0, 0};
  std::vector<i64> out(4);
  segmented_inclusive_scan<i64>(in, seg, out);
  EXPECT_EQ(out, (std::vector<i64>{1, 0, 1, 0}));
}

TEST(SegmentedScan, RandomMatchesReferenceAcrossGrains) {
  util::Rng rng(3);
  const std::size_t n = 30000;
  std::vector<i64> in(n);
  std::vector<u8> seg(n, 0);
  seg[0] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<i64>(rng.below(21)) - 10;
    if (rng.chance(0.01)) seg[i] = 1;
  }
  const std::vector<i64> ref = segmented_reference(in, seg);
  for (const std::size_t grain : {64u, 4096u, 1u << 22}) {
    pram::ScopedGrain g(grain);
    std::vector<i64> out(n);
    segmented_inclusive_scan<i64>(in, seg, out);
    EXPECT_EQ(out, ref) << "grain=" << grain;
  }
}

TEST(SegmentedScan, NoSegmentStartAtZero) {
  // The scan must still behave (first segment implicitly starts at 0).
  std::vector<i64> in{2, 3};
  std::vector<u8> seg{0, 0};
  std::vector<i64> out(2);
  segmented_inclusive_scan<i64>(in, seg, out);
  EXPECT_EQ(out, (std::vector<i64>{2, 5}));
}

class ScanSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizeSweep, InclusiveMatchesReference) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  std::vector<u64> in(n), out(n), ref(n);
  for (auto& v : in) v = rng.below(100);
  std::partial_sum(in.begin(), in.end(), ref.begin());
  inclusive_scan<u64>(in, out);
  EXPECT_EQ(out, ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizeSweep,
                         ::testing::Values(1, 2, 3, 15, 16, 17, 255, 1023, 2048, 10000, 65536));

}  // namespace
}  // namespace sfcp
