// View production vs O(n) snapshot under a localized edit stream — the
// serving-loop read path.  Each measured unit is "apply one localized edit,
// then publish the current partition": view() publishes the O(dirty) patch
// delta (canonicalization stays lazy), snapshot() additionally materializes
// and copies the full canonical label array.  On localized streams the gap
// is the whole point of the incremental read surface.
#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "inc/incremental_solver.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

struct Workload {
  graph::Instance inst;
  std::vector<inc::Edit> stream;
};

Workload make_workload(std::size_t n) {
  util::Rng rng(n * 131 + 7);
  Workload w;
  w.inst = util::random_function(n, 4, rng);
  util::Rng stream_rng(n * 137 + 11);
  w.stream =
      util::random_edit_stream(w.inst, 4096, util::EditMix::LocalizedHotspot, 6, stream_rng);
  return w;
}

void apply_edit(inc::IncrementalSolver& solver, const inc::Edit& e) {
  solver.apply(std::span<const inc::Edit>(&e, 1));
}

// Edit + O(dirty) view: the patch-chain fast path.
void BM_ViewAfterEdit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n);
  inc::IncrementalSolver solver(w.inst);
  std::size_t i = 0;
  for (auto _ : state) {
    apply_edit(solver, w.stream[i++ % w.stream.size()]);
    const core::PartitionView v = solver.view();
    benchmark::DoNotOptimize(v.num_classes());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

// Edit + point queries on the view: the serving read path (same_class never
// materializes the canonical index, so it stays O(1)-ish per query).
void BM_ViewQueryAfterEdit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n);
  inc::IncrementalSolver solver(w.inst);
  std::size_t i = 0;
  for (auto _ : state) {
    const inc::Edit& e = w.stream[i++ % w.stream.size()];
    apply_edit(solver, e);
    const core::PartitionView v = solver.view();
    bool same = false;
    for (u32 d = 1; d <= 8; ++d) {
      same ^= v.same_class(e.node, (e.node + d * 97) % static_cast<u32>(n));
    }
    benchmark::DoNotOptimize(same);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

// Edit + O(n) snapshot: materializes + copies the canonical labels per epoch.
void BM_SnapshotAfterEdit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload w = make_workload(n);
  inc::IncrementalSolver solver(w.inst);
  std::size_t i = 0;
  for (auto _ : state) {
    apply_edit(solver, w.stream[i++ % w.stream.size()]);
    const core::Result r = solver.snapshot();
    benchmark::DoNotOptimize(r.num_blocks);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

BENCHMARK(BM_ViewAfterEdit)->Arg(1 << 14)->Arg(1 << 17)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewQueryAfterEdit)->Arg(1 << 14)->Arg(1 << 17)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotAfterEdit)->Arg(1 << 14)->Arg(1 << 17)->Unit(benchmark::kMicrosecond);

}  // namespace
