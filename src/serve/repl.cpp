#include "serve/repl.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/io.hpp"

namespace sfcp::serve {
namespace {

/// Sends a batch and reports the landing epoch + resulting class count the
/// way the pre-wire REPL did.  With a selected fleet instance the batch
/// routes through FLEET_EDIT/FLEET_VIEW instead.
void apply_and_report(Client& client, std::span<const inc::Edit> edits, std::ostream& out,
                      const ReplHooks& hooks, const ReplState* state) {
  const bool fleet = state != nullptr && state->fleet;
  const u64 epoch = fleet ? client.fleet_apply(state->instance, edits) : client.apply(edits);
  if (hooks.on_edits) hooks.on_edits(edits);
  const Client::ViewInfo v = fleet ? client.fleet_view(state->instance) : client.view();
  if (fleet) out << "[i" << state->instance << "] ";
  out << "applied " << edits.size() << (edits.size() == 1 ? " edit" : " edits")
      << " classes=" << v.num_classes << " epoch=" << epoch << "\n";
}

}  // namespace

void print_serve_help(std::ostream& out) {
  out << "serving commands (over sfcp-wire):\n"
         "  setf <x> <y>             f[x] <- y\n"
         "  setb <x> <label>         b[x] <- label\n"
         "  edits <path>             apply an sfcp-edits v1 file\n"
         "  classof <x>              canonical class of x (alias: query)\n"
         "  members <c>              nodes of class c\n"
         "  blocks                   current class count\n"
         "  view                     served epoch / n / class count\n"
         "  stats                    server + engine counters (+ fsync/apply time\n"
         "                           when the server profiles)\n"
         "  profile                  per-phase profile tree (SFCP_PROFILE servers)\n"
         "  checkpoint [path]        server-side checkpoint (default: its configured path)\n"
         "  subscribe                join the change-notification feed\n"
         "  await [timeout_ms]       wait for the next change notification\n"
         "  instance <id> | off      route edits/views to one fleet instance\n"
         "                           (fleet-mode servers)\n"
         "  fleet-stats              fleet tier/routing counters\n"
         "  quit\n";
}

ReplResult run_serve_command(Client& client, const std::string& line, std::ostream& out,
                             const ReplHooks& hooks, ReplState* state) {
  std::istringstream ss(line);
  std::string cmd;
  if (!(ss >> cmd) || cmd.empty() || cmd[0] == '#') return ReplResult::Handled;
  if (cmd == "quit" || cmd == "exit") return ReplResult::Quit;

  // Commands that only exist as classic frames; a fleet-mode server rejects
  // them, so catch the mismatch client-side with a usable message.
  const bool fleet_routed = state != nullptr && state->fleet;
  if (fleet_routed && (cmd == "classof" || cmd == "query" || cmd == "members" ||
                       cmd == "checkpoint" || cmd == "subscribe" || cmd == "await")) {
    out << "'" << cmd << "' has no per-instance wire frame (the fleet protocol is "
        << "FLEET_EDIT/FLEET_VIEW/STATS) — 'instance off' to leave routing\n";
    return ReplResult::Handled;
  }

  try {
    if (cmd == "setf" || cmd == "setb") {
      u32 x = 0, v = 0;
      if (!(ss >> x >> v)) {
        out << "usage: " << cmd << " <x> <value>\n";
        return ReplResult::Handled;
      }
      const inc::Edit e = cmd == "setf" ? inc::Edit::set_f(x, v) : inc::Edit::set_b(x, v);
      apply_and_report(client, {&e, 1}, out, hooks, state);
    } else if (cmd == "edits") {
      std::string path;
      ss >> path;
      const std::vector<inc::Edit> stream = util::load_edits_file(path);
      apply_and_report(client, stream, out, hooks, state);
    } else if (cmd == "classof" || cmd == "query") {
      u32 x = 0;
      if (!(ss >> x)) {
        out << "usage: " << cmd << " <x>\n";
        return ReplResult::Handled;
      }
      out << "class(" << x << ") = " << client.class_of(x) << "\n";
    } else if (cmd == "members") {
      u32 c = 0;
      if (!(ss >> c)) {
        out << "usage: members <c>\n";
        return ReplResult::Handled;
      }
      const std::vector<u32> members = client.members(c);
      out << "class " << c << " (" << members.size()
          << (members.size() == 1 ? " node):" : " nodes):");
      const std::size_t shown = std::min<std::size_t>(members.size(), 16);
      for (std::size_t i = 0; i < shown; ++i) out << ' ' << members[i];
      if (shown < members.size()) out << " ... (+" << members.size() - shown << ")";
      out << "\n";
    } else if (cmd == "blocks") {
      const bool fleet = state != nullptr && state->fleet;
      const Client::ViewInfo v = fleet ? client.fleet_view(state->instance) : client.view();
      out << "classes = " << v.num_classes << "\n";
    } else if (cmd == "view") {
      const bool fleet = state != nullptr && state->fleet;
      const Client::ViewInfo v = fleet ? client.fleet_view(state->instance) : client.view();
      if (fleet) out << "[i" << state->instance << "] ";
      out << "epoch=" << v.epoch << " n=" << v.n << " classes=" << v.num_classes << "\n";
    } else if (cmd == "instance") {
      std::string arg;
      if (!(ss >> arg)) {
        if (state != nullptr && state->fleet) {
          out << "routing to instance " << state->instance << "\n";
        } else {
          out << "usage: instance <id> | off\n";
        }
        return ReplResult::Handled;
      }
      if (state == nullptr) {
        out << "instance routing is not available in this front end\n";
        return ReplResult::Handled;
      }
      if (arg == "off") {
        state->fleet = false;
        out << "routing to the server's single engine\n";
        return ReplResult::Handled;
      }
      u64 id = 0;
      std::istringstream arg_ss(arg);
      if (!(arg_ss >> id) || !arg_ss.eof()) {
        out << "usage: instance <id> | off\n";
        return ReplResult::Handled;
      }
      state->fleet = true;
      state->instance = id;
      out << "routing to instance " << id << "\n";
    } else if (cmd == "fleet-stats") {
      const Client::Stats st = client.stats_full();
      bool any = false;
      for (const auto& [key, value] : st.counters) {
        if (key.rfind("fleet_", 0) == 0) {
          out << key << "=" << value << "\n";
          any = true;
        }
      }
      if (!any) out << "no fleet counters (not a fleet-mode server?)\n";
    } else if (cmd == "stats") {
      const Client::Stats st = client.stats_full();
      for (const auto& [key, value] : st.counters) {
        out << key << "=" << value << "\n";
      }
      // The durability cost lines operators asked for: what an epoch spends
      // in the journal fsync and the engine apply, straight from the
      // profile tree (absent on non-profiling servers).
      if (const prof::PhaseNode* f = st.profile.find("serve/journal_fsync")) {
        out << "journal_fsync_ms=" << static_cast<double>(f->ns) / 1e6
            << " (calls=" << f->count << ")\n";
      }
      if (const prof::PhaseNode* a = st.profile.find("serve/epoch_apply")) {
        out << "epoch_apply_ms=" << static_cast<double>(a->ns) / 1e6
            << " (calls=" << a->count << ")\n";
      }
    } else if (cmd == "profile") {
      const Client::Stats st = client.stats_full();
      st.profile.render(out);
    } else if (cmd == "checkpoint") {
      std::string path;
      ss >> path;
      const u64 epoch = client.checkpoint(path);
      out << "checkpoint written"
          << (path.empty() ? std::string(" (server path)") : " to " + path)
          << " at epoch " << epoch << "\n";
    } else if (cmd == "subscribe") {
      const u64 epoch = client.subscribe();
      out << "subscribed at epoch " << epoch << "\n";
    } else if (cmd == "await") {
      int timeout_ms = 1000;
      ss >> timeout_ms;
      const auto n = client.next_notification(timeout_ms);
      if (!n) {
        out << "no notification within " << timeout_ms << " ms\n";
      } else if (n->full) {
        out << "notify: epoch=" << n->epoch << " full partition refresh\n";
      } else {
        out << "notify: epoch=" << n->epoch << " changed classes (" << n->classes.size()
            << "):";
        const std::size_t shown = std::min<std::size_t>(n->classes.size(), 16);
        for (std::size_t i = 0; i < shown; ++i) out << ' ' << n->classes[i];
        if (shown < n->classes.size()) {
          out << " ... (+" << n->classes.size() - shown << ")";
        }
        out << "\n";
      }
    } else {
      return ReplResult::Unknown;
    }
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    // Server-reported errors (bad node, not checkpointable, ...) are REPL
    // output; transport failures must reach the caller.
    if (what.find("server error") == std::string::npos &&
        what.find("sfcp-edits") == std::string::npos &&
        what.find("cannot open") == std::string::npos) {
      throw;
    }
    out << "error: " << what << "\n";
  }
  return ReplResult::Handled;
}

}  // namespace sfcp::serve
