// E7 — finding cycle nodes (§5): sequential walk vs f^N doubling vs the
// paper's Euler-tour method, on cycle-heavy and tree-heavy pseudo-forests.
#include <benchmark/benchmark.h>

#include "graph/cycle_detect.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

graph::Instance shaped(std::size_t n, int kind, util::Rng& rng) {
  switch (kind) {
    case 0: return util::random_permutation(n, 3, rng);  // all cycle nodes
    case 1: return util::random_function(n, 3, rng);     // sqrt(n)-ish cycles
    default: return util::long_tail(n, 8, 3, rng);       // one tiny cycle
  }
}

template <graph::CycleDetectStrategy S>
void BM_CycleDetect(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  util::Rng rng(n + kind);
  const auto inst = shaped(n, kind, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::find_cycle_nodes(inst.f, S));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(n));
  state.SetLabel(kind == 0 ? "permutation" : kind == 1 ? "random_fn" : "long_tail");
}

BENCHMARK(BM_CycleDetect<graph::CycleDetectStrategy::Sequential>)
    ->ArgsProduct({{1 << 14, 1 << 18, 1 << 20}, {0, 1, 2}});
BENCHMARK(BM_CycleDetect<graph::CycleDetectStrategy::FunctionPowers>)
    ->ArgsProduct({{1 << 14, 1 << 18, 1 << 20}, {0, 1, 2}});
BENCHMARK(BM_CycleDetect<graph::CycleDetectStrategy::EulerTour>)
    ->ArgsProduct({{1 << 14, 1 << 18, 1 << 20}, {0, 1, 2}});

}  // namespace
