// Unit tests for parallel compaction (pack by flag / predicate).
#include <gtest/gtest.h>

#include "pram/config.hpp"
#include "prim/compact.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(Compact, Empty) {
  std::vector<u8> flags;
  EXPECT_TRUE(prim::pack_index(flags).empty());
}

TEST(Compact, NoneSet) {
  std::vector<u8> flags(10, 0);
  EXPECT_TRUE(prim::pack_index(flags).empty());
}

TEST(Compact, AllSet) {
  std::vector<u8> flags(5, 1);
  EXPECT_EQ(prim::pack_index(flags), (std::vector<u32>{0, 1, 2, 3, 4}));
}

TEST(Compact, Alternating) {
  std::vector<u8> flags{1, 0, 1, 0, 1};
  EXPECT_EQ(prim::pack_index(flags), (std::vector<u32>{0, 2, 4}));
}

TEST(Compact, Values) {
  std::vector<u32> vals{10, 20, 30, 40};
  std::vector<u8> flags{0, 1, 1, 0};
  EXPECT_EQ(prim::pack_values(vals, flags), (std::vector<u32>{20, 30}));
}

TEST(Compact, PredicateForm) {
  const auto evens = prim::pack_index_if(10, [](std::size_t i) { return i % 2 == 0; });
  EXPECT_EQ(evens, (std::vector<u32>{0, 2, 4, 6, 8}));
}

TEST(Compact, OrderPreservedOnLargeRandom) {
  util::Rng rng(11);
  const std::size_t n = 100000;
  std::vector<u8> flags(n);
  for (auto& f : flags) f = rng.chance(0.3) ? 1 : 0;
  std::vector<u32> ref;
  for (u32 i = 0; i < n; ++i) {
    if (flags[i]) ref.push_back(i);
  }
  for (const std::size_t grain : {64u, 1u << 22}) {
    pram::ScopedGrain g(grain);
    EXPECT_EQ(prim::pack_index(flags), ref) << "grain=" << grain;
  }
}

}  // namespace
}  // namespace sfcp
