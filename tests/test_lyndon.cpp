// Unit tests for the supplementary string machinery (Lyndon factorization,
// Z-function, borders) and its consistency with periods and m.s.p.
#include <gtest/gtest.h>

#include "strings/lyndon.hpp"
#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using strings::borders;
using strings::is_lyndon;
using strings::lyndon_factorization;
using strings::z_function;

TEST(Lyndon, SingleChar) {
  std::vector<u32> s{5};
  EXPECT_TRUE(is_lyndon(s));
  EXPECT_EQ(lyndon_factorization(s), (std::vector<u32>{0}));
}

TEST(Lyndon, KnownFactorization) {
  // "banana" with a=1,b=2,n=3: b|an|an|a -> starts 0,1,3,5
  std::vector<u32> s{2, 1, 3, 1, 3, 1};
  EXPECT_EQ(lyndon_factorization(s), (std::vector<u32>{0, 1, 3, 5}));
}

TEST(Lyndon, FactorsAreNonIncreasingLyndonWords) {
  util::Rng rng(2201);
  for (int iter = 0; iter < 50; ++iter) {
    const auto s = util::random_string(1 + rng.below(200), 3, rng);
    const auto starts = lyndon_factorization(s);
    ASSERT_FALSE(starts.empty());
    EXPECT_EQ(starts[0], 0u);
    std::vector<std::vector<u32>> factors;
    for (std::size_t i = 0; i < starts.size(); ++i) {
      const u32 end = i + 1 < starts.size() ? starts[i + 1] : static_cast<u32>(s.size());
      factors.emplace_back(s.begin() + starts[i], s.begin() + end);
      EXPECT_TRUE(is_lyndon(factors.back())) << "factor " << i;
    }
    for (std::size_t i = 0; i + 1 < factors.size(); ++i) {
      EXPECT_GE(factors[i], factors[i + 1]) << "non-increasing violated at " << i;
    }
  }
}

TEST(Lyndon, LyndonWordHasNoSmallerRotation) {
  util::Rng rng(2203);
  for (int iter = 0; iter < 30; ++iter) {
    const auto s = util::random_string(2 + rng.below(30), 3, rng);
    if (is_lyndon(s)) {
      EXPECT_EQ(strings::msp_booth(s), 0u);
      EXPECT_FALSE(strings::is_repeating(s));
    }
  }
}

TEST(ZFunction, KnownSmall) {
  std::vector<u32> s{1, 1, 2, 1, 1, 2, 1, 1};
  const auto z = z_function(s);
  EXPECT_EQ(z[0], 8u);
  EXPECT_EQ(z[1], 1u);
  EXPECT_EQ(z[3], 5u);
  EXPECT_EQ(z[6], 2u);
}

TEST(ZFunction, MatchesBruteForce) {
  util::Rng rng(2207);
  for (int iter = 0; iter < 40; ++iter) {
    const auto s = util::random_string(1 + rng.below(120), 2, rng);
    const auto z = z_function(s);
    for (std::size_t i = 1; i < s.size(); ++i) {
      u32 ref = 0;
      while (i + ref < s.size() && s[ref] == s[i + ref]) ++ref;
      EXPECT_EQ(z[i], ref) << "i=" << i;
    }
  }
}

TEST(Borders, KnownSmall) {
  std::vector<u32> s{1, 2, 1, 1, 2, 1};  // borders: (1,2,1) and (1)
  EXPECT_EQ(borders(s), (std::vector<u32>{1, 3}));
}

TEST(Borders, PeriodBorderDuality) {
  // p is a period of s iff n - p is a border; the smallest DIVIDING period
  // from the period module must be consistent with the border set.
  util::Rng rng(2213);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t p = 1 + rng.below(6);
    const std::size_t reps = 2 + rng.below(5);
    const auto s = util::periodic_string(p * reps, p, 2, rng);
    const u32 period = strings::smallest_period_seq(s);
    const auto bs = borders(s);
    EXPECT_TRUE(std::find(bs.begin(), bs.end(), static_cast<u32>(s.size()) - period) !=
                bs.end())
        << "n - smallest period must be a border";
  }
}

TEST(Borders, ZFunctionConsistency) {
  // z[i] == n - i implies i is a period, i.e., n - i is a border.
  util::Rng rng(2217);
  const auto s = util::random_string(100, 2, rng);
  const auto z = z_function(s);
  const auto bs = borders(s);
  for (u32 i = 1; i < s.size(); ++i) {
    const bool full_match = z[i] == s.size() - i;
    const bool is_border = std::find(bs.begin(), bs.end(), s.size() - i) != bs.end();
    EXPECT_EQ(full_match, is_border) << "i=" << i;
  }
}

}  // namespace
}  // namespace sfcp
