// Exact reproduction of the paper's worked examples: Example 2.2 (input
// arrays + expected A_Q), Fig. 1's structure, Example 3.1 (cycle strings,
// period, classes C_i/D_i) and Example 3.4 (efficient m.s.p. fold).
#include <gtest/gtest.h>

#include "core/coarsest_partition.hpp"
#include "core/cycle_labeling.hpp"
#include "core/verify.hpp"
#include "graph/cycle_structure.hpp"
#include "prim/rename.hpp"
#include "strings/msp.hpp"
#include "strings/period.hpp"
#include "util/generators.hpp"

namespace sfcp {
namespace {

TEST(PaperExample22, InputArraysRoundTrip) {
  const auto inst = util::paper_example_2_2();
  ASSERT_EQ(inst.size(), 16u);
  // Spot-check against the paper's A_f and A_B (1-based in the paper).
  EXPECT_EQ(inst.f[0], 1u);    // f(1) = 2
  EXPECT_EQ(inst.f[6], 0u);    // f(7) = 1
  EXPECT_EQ(inst.f[15], 12u);  // f(16) = 13
  EXPECT_EQ(inst.b[0], 1u);
  EXPECT_EQ(inst.b[10], 3u);
}

TEST(PaperExample22, OutputMatchesPaperAQ) {
  const auto inst = util::paper_example_2_2();
  const auto expected = util::paper_example_2_2_expected_q();
  for (const auto& opt : {core::Options::parallel(), core::Options::sequential()}) {
    const auto r = core::solve(inst, opt);
    EXPECT_EQ(r.q, expected);
    EXPECT_EQ(r.num_blocks, 4u);
  }
}

TEST(PaperExample22, PaperStatedEquivalences) {
  // "nodes 1, 3 and 13 will have the same Q-label, and nodes 1 and 4
  //  cannot have the same Q-label" (Example 2.2; 1-based).
  const auto r = core::solve(util::paper_example_2_2());
  EXPECT_EQ(r.q[0], r.q[2]);
  EXPECT_EQ(r.q[0], r.q[12]);
  EXPECT_NE(r.q[0], r.q[3]);
}

TEST(PaperFig1, GraphStructure) {
  // Fig. 1: two simple cycles — C = (1,2,4,8,3,6,12,11,9,5,10,7) of length
  // 12 and D = (13,14,15,16) of length 4.
  const auto inst = util::paper_example_2_2();
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  ASSERT_EQ(cs.num_cycles(), 2u);
  EXPECT_EQ(cs.cycle_length(0), 12u);  // leader 0 (= node 1)
  EXPECT_EQ(cs.cycle_length(1), 4u);   // leader 12 (= node 13)
  // Walk cycle C from node 1 (0-based 0) along f: the paper's order.
  const u32 expected_c[] = {1, 2, 4, 8, 3, 6, 12, 11, 9, 5, 10, 7};
  u32 x = 0;
  for (const u32 node_1based : expected_c) {
    EXPECT_EQ(x, node_1based - 1);
    x = inst.f[x];
  }
  EXPECT_EQ(x, 0u);  // closed after 12 steps
}

TEST(PaperExample31, BLabelStringAndPeriod) {
  // Cycle C's B-label string is (1,2,1,3,1,2,1,3,1,2,1,3): smallest
  // repeating prefix P = (1,2,1,3), so |P| = 4.
  const auto inst = util::paper_example_2_2();
  std::vector<u32> bc;
  u32 x = 0;
  do {
    bc.push_back(inst.b[x]);
    x = inst.f[x];
  } while (x != 0);
  EXPECT_EQ(bc, (std::vector<u32>{1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3}));
  EXPECT_EQ(strings::smallest_period_seq(bc), 4u);
  // Cycle D's label string is (1,2,1,3) itself.
  std::vector<u32> bd;
  x = 12;
  do {
    bd.push_back(inst.b[x]);
    x = inst.f[x];
  } while (x != 12);
  EXPECT_EQ(bd, (std::vector<u32>{1, 2, 1, 3}));
  EXPECT_EQ(strings::smallest_period_seq(bd), 4u);
}

TEST(PaperExample31, ClassesCiUnionDi) {
  // The paper's classes (1-based): C0 u D0 = {1,3,9,13}, C1 u D1 =
  // {2,6,5,14}, C2 u D2 = {4,12,10,15}, C3 u D3 = {8,11,7,16}.
  const auto inst = util::paper_example_2_2();
  const auto cs = graph::cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  const auto cl = core::label_cycles(inst, cs);
  EXPECT_EQ(cl.num_classes, 1u);
  EXPECT_EQ(cl.num_labels, 4u);
  const std::vector<std::vector<u32>> groups = {
      {1, 3, 9, 13}, {2, 6, 5, 14}, {4, 12, 10, 15}, {8, 11, 7, 16}};
  for (const auto& g : groups) {
    for (std::size_t i = 1; i < g.size(); ++i) {
      EXPECT_EQ(cl.q[g[0] - 1], cl.q[g[i] - 1]) << "group of node " << g[0];
    }
  }
  // Distinct groups get distinct labels.
  EXPECT_NE(cl.q[0], cl.q[1]);
  EXPECT_NE(cl.q[0], cl.q[3]);
  EXPECT_NE(cl.q[0], cl.q[7]);
}

TEST(PaperExample34, MarkedPositionsAndFold) {
  // The paper marks the three 1s that start runs: positions 2, 8, 13
  // (0-based) in (3,2,1,3,2,3,4,3,1,2,3,4,2,1,1,1,3,2,2).
  const auto s = util::paper_example_3_4();
  std::vector<u32> marks;
  for (u32 j = 0; j < s.size(); ++j) {
    if (s[j] == 1 && s[(j + s.size() - 1) % s.size()] != 1) marks.push_back(j);
  }
  EXPECT_EQ(marks, (std::vector<u32>{2, 8, 13}));
  // The paper's pair multiset after step 2 (with the lone (2) padded by m):
  // sorted ranks must match 1,2,3,3,4,5,6,7,8,9 for pairs
  // (1,1),(1,2),(1,3),(1,3),(2,m),(2,2),(2,3),(3,2),(3,4),(4,3).
  // We verify end-to-end instead: the m.s.p. is preserved by the fold.
  EXPECT_EQ(strings::msp_efficient(s), strings::msp_brute(s));
  EXPECT_EQ(strings::msp_brute(s), 13u);
}

TEST(PaperExample34, ReducedStringMatchesPaper) {
  // After one fold the paper obtains the circular string
  // (7,3,6,9,2,8,4,1,3,5) (up to rotation; it lists the groups starting
  // from its chosen order).  Our fold emits groups in ascending mark order:
  // (3,6,9,2,8,4,1,3,5,7) — the same circular string.
  const auto s = util::paper_example_3_4();
  // Reproduce the fold manually with the library's building blocks.
  const std::vector<u32> marks{2, 8, 13};
  std::vector<u32> a, b;
  const u32 m = 1;
  for (std::size_t t = 0; t < marks.size(); ++t) {
    const u32 st = marks[t];
    const u32 g = static_cast<u32>((marks[(t + 1) % marks.size()] + s.size() - st) % s.size());
    for (u32 q = 0; 2 * q < g; ++q) {
      a.push_back(s[(st + 2 * q) % s.size()]);
      b.push_back(2 * q + 1 < g ? s[(st + 2 * q + 1) % s.size()] : m);
    }
  }
  const auto ranks = prim::rename_pairs_sorted(a, b);
  // Dense ranks are 0-based; the paper's are 1-based.
  std::vector<u32> reduced(ranks.labels.size());
  for (std::size_t i = 0; i < reduced.size(); ++i) reduced[i] = ranks.labels[i] + 1;
  EXPECT_EQ(reduced, (std::vector<u32>{3, 6, 9, 2, 8, 4, 1, 3, 5, 7}));
  EXPECT_EQ(ranks.num_classes, 9u);  // paper assigns ranks 1..9
}

}  // namespace
}  // namespace sfcp
