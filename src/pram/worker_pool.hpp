#pragma once
// worker_pool.hpp — persistent worker pool behind pram's parallel loops.
//
// The OpenMP realization of a PRAM round (pram/parallel_for.hpp) forks and
// joins a thread team on EVERY loop.  That is fine for one long batch solve
// but dominates the serving path, where ShardedEngine::apply() runs many
// small repair fans per epoch.  A WorkerPool keeps `threads - 1` workers
// alive for the whole session: each worker parks on a condvar between
// epochs, is fed from its own single-producer/single-consumer task ring,
// and installs its execution context once at spawn — so dispatching a
// round costs two atomic stores per task instead of a team start.
//
// Surfaces, lowest to highest level:
//
//   submit(slot, fn, env, arg)  enqueue one task on lane `slot % width()`.
//                               Slots give affinity: the same slot always
//                               lands on the same lane (shard s -> lane
//                               s % width, so a shard's repairs revisit the
//                               worker whose cache already holds it).  Lane
//                               width()-1 is the CALLER's lane; its tasks
//                               run inside wait().
//   wait()                      run caller-lane tasks, then block until
//                               every submitted task finished.  Rethrows
//                               the first exception any task raised.
//   fan(count, body)            body(i) for i in [0, count): one atomic-
//                               cursor job drained by every worker and the
//                               caller together (no per-item enqueue, so a
//                               million-item fan puts no pressure on the
//                               rings).  Blocks until done; rethrows.
//
// Threading contract: ONE coordinating thread talks to the pool at a time
// (submit/fan/wait) — matching the Engine contract of one apply() caller.
// The rings are SPSC under exactly this contract.  Nested use from inside
// ANY pool task degrades to inline serial execution: a worker is one PRAM
// processor (config.hpp's threads() pins to 1 there), and so is the
// coordinator while it runs a task inline — caller-lane tasks inside
// wait(), ring-full/degenerate submit fallbacks, and its own share of a
// fan all execute under an in_pool_inline() pin, so a task whose body runs
// nested parallel rounds (a shard repair over a super-grain component)
// can never re-enter submit/fan/wait and re-drain queues the outer wait()
// is still iterating.
//
// Error lifetime: every submit/fan sequence MUST be closed with wait()
// (fan does so internally) before the next sequence begins on this pool.
// Inline fallbacks defer task exceptions to the same first-error slot that
// wait() drains; a sequence abandoned without wait() leaks its error into
// the next, unrelated wait() on the pool.
//
// parallel_for / parallel_blocks / parallel_fan route here transparently
// when the installed ExecutionContext carries a pool (execution_context
// `pool` field); the OpenMP fork-join path remains the default and the
// fallback, so batch-oriented callers (core::Solver::solve) are unchanged
// unless a pool is installed.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "pram/execution_context.hpp"

namespace sfcp::pram {

class WorkerPool {
 public:
  /// Plain-function task signature: `env` is caller-owned closure state
  /// (must stay alive until wait() returns), `arg` an item index.
  using RawFn = void (*)(void* env, std::size_t arg);

  /// `threads` is the total parallel width INCLUDING the caller, matching
  /// ExecutionContext::threads; the pool spawns `threads - 1` workers.
  /// 0 resolves pram::threads() at construction.  Workers spawn lazily on
  /// first submit/fan and are joined by the destructor.
  explicit WorkerPool(int threads = 0);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Parallel width: worker count + 1 (the caller participates).
  int width() const noexcept { return nworkers_ + 1; }

  /// True on threads owned by ANY WorkerPool (see execution_context.hpp).
  static bool on_worker() noexcept { return detail::tls_pool_worker; }

  /// This thread's worker lane (0..workers-1), or -1 on non-pool threads.
  /// The caller of submit()/fan() is lane width()-1 by convention.
  static int lane() noexcept { return detail::tls_pool_lane; }

  /// The lane submit() routes `slot` to: `slot % width()`.  Coordinators
  /// that keep per-lane scratch (metrics sinks, arena stripes) index it
  /// with this, so a slot's scratch follows its lane affinity — including
  /// when a ring-full fallback runs the task inline on the coordinator
  /// (the scratch is keyed by slot, not by executing thread, and lane
  /// scratch must therefore tolerate concurrent use, e.g. atomic sinks).
  int lane_of(std::size_t slot) const noexcept {
    return static_cast<int>(slot % static_cast<std::size_t>(width()));
  }

  /// Enqueues one task on lane `slot % width()`.  Captures the caller's
  /// installed ExecutionContext pointer; the worker rebinds it around the
  /// task, so charging/profiling land in the caller's session.  If the
  /// target ring is full the task runs inline on the caller (correctness
  /// over throughput), under the in_pool_inline() pin and with its
  /// exception deferred to wait().  ALWAYS pair with wait(): it is what
  /// collects deferred errors (see the error-lifetime note above).
  void submit(std::size_t slot, RawFn fn, void* env, std::size_t arg);

  /// Convenience: submit a reference to any callable taking (std::size_t).
  /// `body` must outlive wait().
  template <typename Body>
  void submit(std::size_t slot, Body& body, std::size_t arg) {
    submit(
        slot, [](void* env, std::size_t a) { (*static_cast<Body*>(env))(a); },
        static_cast<void*>(&body), arg);
  }

  /// body(i) for every i in [0, count), workers + caller claiming items
  /// from a shared atomic cursor.  Blocks until all items ran; rethrows
  /// the first exception.  Items are unordered; bodies on different items
  /// must be independent (this is a PRAM round).
  template <typename Body>
  void fan(std::size_t count, Body&& body) {
    if (count == 0) return;
    using Decayed = std::decay_t<Body>;
    FanJob job;
    job.count = count;
    job.env = const_cast<void*>(static_cast<const void*>(std::addressof(body)));
    job.run = [](void* env, std::size_t i) { (*static_cast<Decayed*>(env))(i); };
    run_fan_(job);
  }

  /// Runs pending caller-lane tasks, then blocks until every outstanding
  /// task completed.  Rethrows the first captured task exception.
  void wait();

 private:
  struct Task {
    RawFn fn = nullptr;
    void* env = nullptr;
    std::size_t arg = 0;
    const ExecutionContext* ctx = nullptr;  ///< caller's session at submit
  };

  struct FanJob {
    std::atomic<std::size_t> next{0};
    std::size_t count = 0;
    RawFn run = nullptr;
    void* env = nullptr;
  };

  static constexpr std::size_t kRingCap = 1024;  // power of two

  /// One worker's SPSC task ring.  `tail` is written by the coordinating
  /// caller (seq_cst, paired with the sleep protocol), `head` only by the
  /// owning worker.
  struct Lane {
    alignas(64) std::atomic<std::size_t> head{0};
    alignas(64) std::atomic<std::size_t> tail{0};
    std::array<Task, kRingCap> ring;
  };

  void ensure_spawned_();
  void worker_main_(int lane_idx);
  void run_task_(const Task& t) noexcept;  ///< run + record error + count down
  void run_fan_(FanJob& job);
  static void drain_fan_(void* env, std::size_t);
  bool try_push_(Lane& lane, const Task& t) noexcept;
  bool try_pop_(Lane& lane, Task& out) noexcept;
  void wake_sleepers_();
  void record_error_(std::exception_ptr e) noexcept;

  int nworkers_ = 0;
  ExecutionContext base_{};  ///< installed once per worker at spawn
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
  std::once_flag spawn_flag_;
  std::atomic<bool> stop_{false};

  std::vector<Task> caller_q_;     ///< lane width()-1; drained by wait()
  std::size_t caller_pos_ = 0;     ///< wait()'s drain cursor into caller_q_.
                                   ///< A member (not a loop-local) so even a
                                   ///< re-entrant wait() cannot replay tasks
                                   ///< that already ran.

  alignas(64) std::atomic<std::size_t> outstanding_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  std::atomic<int> sleepers_{0};  ///< workers parked (or about to park)
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace sfcp::pram
