// Multi-tenant fleet throughput: an in-process fleet::FleetEngine multiplexing
// a million tiny instance-keyed engines behind warm/cold tiering.
//
//   * BM_FleetZipfEdits — one measured unit is a 256-edit apply_batch whose
//     instance ids are Zipf(0.99)-distributed over 2^20 instances (the YCSB
//     skew: a hot head that stays warm, a heavy tail that churns through the
//     evict/fault-in path).  items_processed counts edits, so the console
//     rate is routed edits/sec.  The warm set is capped at kWarmLimit
//     instances; the exported warm / warm_bytes / evictions / faults /
//     instances counters land in BENCH_fleet.json and document that the
//     warm-set RSS stays bounded while the touched-instance count grows.
//   * BM_FleetViewP99 — Zipf-routed single-instance views under the same
//     edit traffic; the p99 over all iterations is exported as p99_us.
//   * BM_FleetColdFlood — each iteration floods a fresh fleet with one
//     apply_batch over kFlood distinct never-seen instances, so every one is
//     materialized through core::Solver::solve_batch (the cold_batches
//     counter proves the batched path ran).  items_processed counts
//     instances, so the console rate is cold starts/sec.
//   * BM_FleetConcurrentEdits — pool threads-scaling on the warm fan:
//     apply_batch with a WorkerPool of width t installed, so distinct
//     instances' edit buckets repair concurrently on lane slot%t behind one
//     epoch barrier.  t=1 runs poolless (serial) and anchors the
//     speedup-vs-t1 ratio tools/bench_diff.py reports for the /t2 /t4 /t8
//     keys; Zipf(0.99) and uniform id streams bound the skew range (a Zipf
//     batch has fewer distinct instances, so less fan to exploit).  On a
//     one-core CI runner the ratios sit near 1x — see README "Fleet
//     serving" for the caveat.
//
// Recorded to BENCH_fleet.json in CI and diffed by tools/bench_diff.py.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet_engine.hpp"
#include "pram/worker_pool.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace sfcp;

constexpr u64 kInstances = u64{1} << 20;  // Zipf keyspace: 1,048,576 instances
constexpr std::size_t kNodesPer = 24;     // nodes per instance ("small instances")
constexpr u32 kLabels = 4;
constexpr std::size_t kWarmLimit = 1024;  // warm-set cap (bounds resident engines)
constexpr std::size_t kBatchEdits = 256;  // edits per measured apply_batch
constexpr std::size_t kStreamLen = std::size_t{1} << 16;  // pre-sampled ids, cycled
constexpr std::size_t kFlood = 1024;      // distinct cold instances per flood batch

graph::Instance make_instance(fleet::InstanceId id) {
  util::Rng rng(0x5eed ^ (id * 0x9e3779b97f4a7c15ull + 1));
  return util::random_function(kNodesPer, kLabels, rng);
}

std::unique_ptr<fleet::FleetEngine> make_fleet(std::size_t warm_limit) {
  fleet::FleetConfig cfg;
  cfg.engine = "incremental";
  cfg.warm_limit = warm_limit;
  auto fleet = std::make_unique<fleet::FleetEngine>(std::move(cfg));
  fleet->set_factory(make_instance);
  return fleet;
}

/// Pre-sampled Zipf id stream + per-op edits (sampling must not be timed).
struct Stream {
  std::vector<fleet::InstanceId> ids;
  std::vector<inc::Edit> edits;
};

Stream sample_stream(bool zipf_ids) {
  Stream out;
  util::Rng rng(0xf1ee7);
  util::ZipfSampler zipf(kInstances);
  out.ids.resize(kStreamLen);
  out.edits.resize(kStreamLen);
  for (std::size_t i = 0; i < kStreamLen; ++i) {
    out.ids[i] = zipf_ids ? zipf(rng) : rng.below_u32(static_cast<u32>(kInstances));
    const u32 x = rng.below_u32(kNodesPer);
    out.edits[i] = rng.chance(0.75)
                       ? inc::Edit::set_f(x, rng.below_u32(kNodesPer))
                       : inc::Edit::set_b(x, rng.below_u32(kLabels));
  }
  return out;
}

const Stream& stream() {
  static const Stream s = sample_stream(/*zipf_ids=*/true);
  return s;
}

const Stream& uniform_stream() {
  static const Stream s = sample_stream(/*zipf_ids=*/false);
  return s;
}

void export_fleet_counters(benchmark::State& state, const fleet::FleetStats& st) {
  state.counters["instances"] = static_cast<double>(st.instances);
  state.counters["warm"] = static_cast<double>(st.warm);
  state.counters["warm_bytes"] = static_cast<double>(st.warm_bytes);
  state.counters["evictions"] = static_cast<double>(st.evictions);
  state.counters["faults"] = static_cast<double>(st.faults);
  state.counters["cold_batches"] = static_cast<double>(st.cold_batches);
}

void BM_FleetZipfEdits(benchmark::State& state) {
  const std::unique_ptr<fleet::FleetEngine> fleet = make_fleet(kWarmLimit);
  const Stream& s = stream();
  std::vector<fleet::InstanceEdit> batch(kBatchEdits);
  std::size_t at = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatchEdits; ++i) {
      batch[i] = {s.ids[at], s.edits[at]};
      if (++at == kStreamLen) at = 0;
    }
    fleet->apply_batch(batch);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kBatchEdits));
  export_fleet_counters(state, fleet->stats());
}

void BM_FleetViewP99(benchmark::State& state) {
  const std::unique_ptr<fleet::FleetEngine> fleet = make_fleet(kWarmLimit);
  const Stream& s = stream();
  std::vector<double> rtt_us;
  rtt_us.reserve(1 << 16);
  std::size_t at = 0;
  for (auto _ : state) {
    // Keep real routed edit traffic flowing: one applied edit per view.
    fleet->apply(s.ids[at], {&s.edits[at], 1});
    const fleet::InstanceId target = s.ids[(at + 1) % kStreamLen];
    if (++at == kStreamLen) at = 0;
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fleet->view(target).num_classes());
    const auto t1 = std::chrono::steady_clock::now();
    rtt_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  if (!rtt_us.empty()) {
    std::sort(rtt_us.begin(), rtt_us.end());
    const std::size_t idx =
        static_cast<std::size_t>(std::ceil(0.99 * static_cast<double>(rtt_us.size()))) - 1;
    state.counters["p99_us"] = rtt_us[std::min(idx, rtt_us.size() - 1)];
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
  export_fleet_counters(state, fleet->stats());
}

void BM_FleetColdFlood(benchmark::State& state) {
  u64 batches = 0, cold_instances = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // A fresh fleet per iteration: every id below is unborn, so the whole
    // flood funnels through one solve_batch (and RSS stays flat across
    // iterations instead of accreting cold images).
    const std::unique_ptr<fleet::FleetEngine> fleet = make_fleet(/*warm_limit=*/0);
    std::vector<fleet::InstanceEdit> batch(kFlood);
    for (std::size_t i = 0; i < kFlood; ++i) {
      batch[i] = {kInstances + i, inc::Edit::set_f(0, 1)};
    }
    state.ResumeTiming();
    fleet->apply_batch(batch);
    const fleet::FleetStats st = fleet->stats();
    batches += st.cold_batches;
    cold_instances += st.batched_cold_instances;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * static_cast<i64>(kFlood));
  state.counters["cold_batches"] = static_cast<double>(batches);
  state.counters["batched_cold_instances"] = static_cast<double>(cold_instances);
}

void BM_FleetConcurrentEdits(benchmark::State& state, bool zipf_ids, int threads) {
  const Stream& s = zipf_ids ? stream() : uniform_stream();
  fleet::FleetConfig cfg;
  cfg.engine = "incremental";
  cfg.warm_limit = kWarmLimit;
  cfg.ctx.threads = threads;
  auto fleet = std::make_unique<fleet::FleetEngine>(std::move(cfg));
  fleet->set_factory(make_instance);
  std::unique_ptr<pram::WorkerPool> pool;
  if (threads > 1) {
    pool = std::make_unique<pram::WorkerPool>(threads);
    fleet->install_pool(pool.get());
  }
  std::vector<fleet::InstanceEdit> batch(kBatchEdits);
  std::size_t at = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatchEdits; ++i) {
      batch[i] = {s.ids[at], s.edits[at]};
      if (++at == kStreamLen) at = 0;
    }
    fleet->apply_batch(batch);
  }
  if (pool) fleet->install_pool(nullptr);  // the pool dies before the fleet
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kBatchEdits));
  export_fleet_counters(state, fleet->stats());
}

const int kRegistered = [] {
  benchmark::RegisterBenchmark(
      ("BM_FleetZipfEdits/zipf/" + std::to_string(kInstances)).c_str(), BM_FleetZipfEdits)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      ("BM_FleetViewP99/zipf/" + std::to_string(kInstances)).c_str(), BM_FleetViewP99)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      ("BM_FleetColdFlood/flood/" + std::to_string(kFlood)).c_str(), BM_FleetColdFlood)
      ->Unit(benchmark::kMillisecond);
  // Warm-fan threads-scaling keys: thread count is a /t<k> name segment so
  // it lands in the record's strategy key, grouping into bench_diff.py's
  // pool-scaling families (speedup vs the /t1 anchor).
  for (const bool zipf_ids : {true, false}) {
    for (const int t : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark(
          (std::string("BM_FleetConcurrentEdits/") + (zipf_ids ? "zipf" : "uniform") + "/t" +
           std::to_string(t))
              .c_str(),
          BM_FleetConcurrentEdits, zipf_ids, t)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return 0;
}();

}  // namespace
