#pragma once
// Deterministic, fast PRNG (xoshiro256** seeded by SplitMix64): identical
// streams on every platform, so tests and benches are reproducible.  Also
// home to the Zipf sampler the fleet bench uses to skew instance traffic.

#include <cmath>
#include <cstdint>

#include "pram/types.hpp"

namespace sfcp::util {

class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed5eed5eedull) {
    u64 sm = seed;
    for (auto& word : s_) {
      sm += 0x9e3779b97f4a7c15ull;
      u64 z = sm;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  u64 below(u64 bound) { return next() % bound; }

  u32 below_u32(u32 bound) { return static_cast<u32>(below(bound)); }

  /// Uniform in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform01() < p; }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4];
};

/// Zipf-distributed ranks over [0, n): rank k is drawn with probability
/// proportional to 1/(k+1)^theta, so rank 0 is the hottest.  Hörmann &
/// Derflinger rejection-inversion — O(1) per sample independent of n, which
/// is what lets the fleet bench skew traffic across a million instances
/// without a million-entry CDF table.  Requires theta in (0, 1) ∪ (1, ∞);
/// the default 0.99 is the classic YCSB skew.
class ZipfSampler {
 public:
  explicit ZipfSampler(u64 n, double theta = 0.99) : n_(n), theta_(theta) {
    h_x1_ = h_(1.5) - 1.0;
    h_n_ = h_(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - h_inv_(h_(2.5) - std::pow(2.0, -theta_));
  }

  u64 operator()(Rng& rng) {
    for (;;) {
      const double u = h_n_ + rng.uniform01() * (h_x1_ - h_n_);
      const double x = h_inv_(u);
      u64 k = static_cast<u64>(x + 0.5);
      if (k < 1) {
        k = 1;
      } else if (k > n_) {
        k = n_;
      }
      const double kd = static_cast<double>(k);
      if (kd - x <= s_ || u >= h_(kd + 0.5) - std::pow(kd, -theta_)) {
        return k - 1;
      }
    }
  }

 private:
  /// Antiderivative of x^-theta (shifted so h_inv_ stays well-conditioned).
  double h_(double x) const { return std::expm1((1.0 - theta_) * std::log(x)) / (1.0 - theta_); }
  double h_inv_(double u) const {
    return std::exp(std::log1p(u * (1.0 - theta_)) / (1.0 - theta_));
  }

  u64 n_;
  double theta_;
  double h_x1_, h_n_, s_;
};

}  // namespace sfcp::util
