#include "core/trace.hpp"

#include <sstream>

#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "prim/rename.hpp"
#include "util/timer.hpp"

namespace sfcp::core {

u64 TracedResult::total_ops() const {
  u64 total = 0;
  for (const auto& s : stages) total += s.ops;
  return total;
}

std::string TracedResult::to_string() const {
  std::ostringstream os;
  for (const auto& s : stages) {
    os << "  " << s.name << ": ops=" << s.ops << " rounds=" << s.rounds << " ms=" << s.millis
       << "\n";
  }
  return os.str();
}

TracedResult solve_traced(const graph::Instance& inst, const Options& opt) {
  graph::validate(inst);
  TracedResult out;
  const std::size_t n = inst.size();
  if (n == 0) return out;

  auto stage = [&](const char* name, auto&& body) {
    pram::Metrics m;
    util::Timer timer;
    {
      // Inherit the caller's session settings (threads/grain/seed) but
      // redirect charging to the per-stage sink.
      pram::ExecutionContext stage_ctx =
          pram::current_context() ? *pram::current_context() : pram::ExecutionContext{};
      stage_ctx.metrics = &m;
      pram::ScopedContext guard(stage_ctx);
      body();
    }
    out.stages.push_back({name, m.ops(), m.round_count(), timer.millis()});
  };

  std::vector<u8> on_cycle;
  stage("1. find cycle nodes (S5)",
        [&] { on_cycle = graph::find_cycle_nodes(inst.f, opt.cycle_detect); });

  graph::CycleStructure cs;
  stage("1b. cycle structure (rank/arrange)", [&] {
    cs = graph::cycle_structure_with_flags(inst.f, on_cycle, opt.cycle_structure);
  });

  CycleLabeling cl;
  stage("2. cycle node labelling (S3)",
        [&] { cl = label_cycles(inst, cs, opt.cycle_labeling); });

  TreeLabeling tl;
  stage("3. tree node labelling (S4)",
        [&] { tl = label_trees(inst, cs, cl, opt.tree_labeling); });

  stage("4. canonicalize labels", [&] {
    auto canon = prim::canonicalize_labels(tl.q);
    out.result.q = std::move(canon.labels);
    out.result.num_blocks = canon.num_classes;
  });

  out.result.num_cycles = static_cast<u32>(cs.num_cycles());
  out.result.cycle_nodes = static_cast<u32>(cs.cycle_nodes.size());
  out.result.kept_tree_nodes = tl.kept;
  out.result.residual_tree_nodes = tl.residual;
  return out;
}

}  // namespace sfcp::core
