#pragma once
// Circular-string (necklace) utilities built on the m.s.p. machinery.
//
// Section 3 of the paper reduces cycle equivalence to "cyclic shift
// equivalence" of B-label strings: two cycles are equivalent iff the
// smallest repeating prefix of one is a cyclic shift of the other's.  This
// module packages that relation as a reusable string API:
//
//   * msp_shiloach           — the sequential two-pointer duel canonizer in
//                              the spirit of Shiloach [17] (the paper's
//                              sequential reference for m.s.p.), O(n) time
//   * canonical_necklace     — least rotation of the smallest repeating
//                              prefix: the unique representative of the
//                              cyclic-shift-equivalence class
//   * rotation_equivalent    — are two strings cyclic shifts of each other?
//   * necklace_classes       — partition a StringList into cyclic-shift
//                              equivalence classes (the string-level view of
//                              the paper's cycle partitioning, §3.2)
//   * count_necklaces        — Burnside count of k-ary necklaces of length n
//                              (cross-check for class enumeration tests)

#include <span>
#include <vector>

#include "pram/types.hpp"
#include "strings/string_sort.hpp"

namespace sfcp::strings {

/// Least-rotation index by the two-pointer candidate duel (Shiloach-style
/// canonization, O(n) time, O(1) space).  Returns the smallest minimal
/// starting point, like the other m.s.p. entry points.
u32 msp_shiloach(std::span<const u32> s);

/// Canonical representative of s's cyclic-shift-equivalence class: the
/// least rotation of the smallest repeating prefix.  Two circular strings
/// are cyclic-shift equivalent iff their canonical necklaces are equal.
std::vector<u32> canonical_necklace(std::span<const u32> s);

/// True iff b is a cyclic shift of a (requires equal lengths; the empty
/// string is equivalent only to itself).  O(n) time.
bool rotation_equivalent(std::span<const u32> a, std::span<const u32> b);

/// Result of grouping strings into cyclic-shift equivalence classes.
struct NecklaceClasses {
  std::vector<u32> label;  ///< label[i] = class of string i, in [0, count)
  u32 count = 0;           ///< number of distinct classes
};

/// Partitions the strings of `list` into cyclic-shift equivalence classes.
/// Strings of different length may share a class when their smallest
/// repeating prefixes are cyclic shifts (exactly the paper's cycle
/// equivalence).  Labels are canonicalized to first-occurrence order.
NecklaceClasses necklace_classes(const StringList& list);

/// Number of k-ary necklaces of length n by Burnside's lemma:
/// (1/n) * sum over d | n of phi(d) * k^{n/d}.  Intended for small n, k
/// (values must fit u64); used to cross-check class enumeration.
u64 count_necklaces(u32 n, u32 k);

}  // namespace sfcp::strings
