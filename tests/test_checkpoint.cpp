// sfcp-checkpoint v1: a warm IncrementalSolver round-trips through save/load
// — labels, counters, maps, epoch and stats — and keeps answering edits
// identically to the original; malformed streams fail loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "inc/incremental_solver.hpp"
#include "util/generators.hpp"
#include "util/io.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

void apply_single(inc::IncrementalSolver& solver, const inc::Edit& e) {
  if (e.kind == inc::Edit::Kind::SetF) {
    solver.set_f(e.node, e.value);
  } else {
    solver.set_b(e.node, e.value);
  }
}

/// A solver warmed by a mixed edit stream, so the checkpoint carries live
/// cycle classes, signature refcounts and non-trivial stats.
inc::IncrementalSolver warmed_solver(std::size_t n, u64 seed, std::size_t edits) {
  util::Rng rng(seed);
  auto inst = util::random_function(n, 4, rng);
  util::Rng stream_rng(seed + 1);
  const auto stream = util::random_edit_stream(inst, edits, util::EditMix::Uniform, 6, stream_rng);
  inc::IncrementalSolver solver(std::move(inst));
  for (const auto& e : stream) apply_single(solver, e);
  return solver;
}

std::string checkpoint_bytes(const inc::IncrementalSolver& solver) {
  std::ostringstream os;
  solver.save(os);
  return os.str();
}

TEST(Checkpoint, RoundTripRestoresTheWholeEngine) {
  const inc::IncrementalSolver original = warmed_solver(1500, 90, 100);
  std::istringstream is(checkpoint_bytes(original));
  const inc::IncrementalSolver restored = inc::IncrementalSolver::load(is);

  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.epoch(), original.epoch());
  EXPECT_EQ(restored.num_blocks(), original.num_blocks());
  EXPECT_EQ(restored.stats().edits, original.stats().edits);
  EXPECT_EQ(restored.stats().repairs, original.stats().repairs);
  EXPECT_EQ(restored.stats().rebuilds, original.stats().rebuilds);

  const core::Result a = original.snapshot();
  const core::Result b = restored.snapshot();
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
  EXPECT_EQ(a.num_cycles, b.num_cycles);
  EXPECT_EQ(a.cycle_nodes, b.cycle_nodes);
  EXPECT_EQ(a.kept_tree_nodes, b.kept_tree_nodes);
  EXPECT_EQ(a.residual_tree_nodes, b.residual_tree_nodes);
}

TEST(Checkpoint, SaveIsDeterministic) {
  const inc::IncrementalSolver original = warmed_solver(800, 91, 80);
  const std::string first = checkpoint_bytes(original);
  // Save -> load -> save must reproduce the byte stream (sections are
  // key-sorted, so equal engines write equal files).
  std::istringstream is(first);
  const inc::IncrementalSolver restored = inc::IncrementalSolver::load(is);
  EXPECT_EQ(checkpoint_bytes(restored), first);
}

TEST(Checkpoint, RestoredEngineKeepsAnsweringEditsIdentically) {
  inc::IncrementalSolver original = warmed_solver(1200, 92, 60);
  std::istringstream is(checkpoint_bytes(original));
  inc::IncrementalSolver restored = inc::IncrementalSolver::load(is);

  util::Rng stream_rng(93);
  const auto more = util::random_edit_stream(original.instance(), 80, util::EditMix::Uniform, 6,
                                             stream_rng);
  for (const auto& e : more) {
    apply_single(original, e);
    apply_single(restored, e);
  }
  EXPECT_EQ(original.snapshot().q, restored.snapshot().q);
  // And the restored engine still matches a fresh solve — its maps were
  // genuinely warm, not just cosmetically equal.
  const core::Result fresh = core::solve(restored.instance());
  EXPECT_EQ(restored.snapshot().q, fresh.q);
}

TEST(Checkpoint, FileHelpersRoundTrip) {
  const inc::IncrementalSolver original = warmed_solver(600, 94, 40);
  const std::string path = ::testing::TempDir() + "sfcp_checkpoint_test.bin";
  inc::save_checkpoint_file(path, original);
  const inc::IncrementalSolver restored = inc::load_checkpoint_file(path);
  EXPECT_EQ(restored.snapshot().q, original.snapshot().q);
  std::remove(path.c_str());
  EXPECT_THROW(inc::load_checkpoint_file(path), std::runtime_error);
}

// ---- error paths ---------------------------------------------------------

TEST(Checkpoint, BadMagicIsRejected) {
  std::istringstream empty("");
  EXPECT_THROW(inc::IncrementalSolver::load(empty), std::runtime_error);

  std::istringstream text("sfcp-instance v1\n3\n0 1 2\n0 0 0\n");
  EXPECT_THROW(inc::IncrementalSolver::load(text), std::runtime_error);

  std::string bytes = checkpoint_bytes(warmed_solver(64, 95, 10));
  bytes[1] ^= 0x20;  // corrupt the magic
  std::istringstream is(bytes);
  EXPECT_THROW(inc::IncrementalSolver::load(is), std::runtime_error);
}

TEST(Checkpoint, TruncationAtEveryBoundaryIsRejected) {
  const std::string bytes = checkpoint_bytes(warmed_solver(128, 96, 20));
  // Probe a spread of prefix lengths, including section boundaries near the
  // start and the very last byte; every one must throw, never crash or
  // silently succeed.
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, std::size_t{8}, std::size_t{20},
                          bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream is(bytes.substr(0, len));
    EXPECT_THROW(inc::IncrementalSolver::load(is), std::runtime_error)
        << "prefix of " << len << " bytes";
  }
}

TEST(Checkpoint, HugeLabelBoundIsRejectedBeforeAllocating) {
  inc::IncrementalSolver original = warmed_solver(64, 98, 10);
  std::string bytes = checkpoint_bytes(original);
  // The u32 label bound sits after the checkpoint magic, the embedded
  // instance section and the u64 epoch; a corrupt ~4e9 value must throw
  // instead of sizing the per-label arrays to gigabytes.
  const std::size_t bound_offset = 8 + (8 + 4 + 2 * original.size() * 4) + 8;
  ASSERT_LT(bound_offset + 4, bytes.size());
  for (std::size_t i = 0; i < 4; ++i) bytes[bound_offset + i] = static_cast<char>(0xfe);
  std::istringstream is(bytes);
  EXPECT_THROW(inc::IncrementalSolver::load(is), std::runtime_error);
}

TEST(Checkpoint, CorruptLabelIsRejected) {
  inc::IncrementalSolver original = warmed_solver(64, 97, 10);
  std::string bytes = checkpoint_bytes(original);
  // The label array starts right after the embedded instance section (8-byte
  // checkpoint magic + 8-byte instance magic + u32 n + 2n u32 arrays) and
  // the u64 epoch + u32 label bound.  Overwrite the first label with a value
  // far above the label bound.
  const std::size_t n = original.size();
  const std::size_t q_offset = 8 + (8 + 4 + 2 * n * 4) + 8 + 4;
  ASSERT_LT(q_offset + 4, bytes.size());
  bytes[q_offset + 0] = static_cast<char>(0xff);
  bytes[q_offset + 1] = static_cast<char>(0xff);
  bytes[q_offset + 2] = static_cast<char>(0xff);
  bytes[q_offset + 3] = static_cast<char>(0x7f);
  std::istringstream is(bytes);
  EXPECT_THROW(inc::IncrementalSolver::load(is), std::runtime_error);
}

}  // namespace
}  // namespace sfcp
