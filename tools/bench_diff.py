#!/usr/bin/env python3
"""Perf-trajectory diff for BENCH_*.json records.

Every bench/table target in this repo appends JSON-lines records of the form

    {"name":"BM_ShardedEdits/k8/localized","n":0,"strategy":"...","threads":8,"ms":1.23}

via `--json <path>` (src/util/bench_json.hpp); CI uploads one file per
target per commit.  This tool compares two such files:

    tools/bench_diff.py OLD.json NEW.json [--threshold 20]

Records are keyed by (name, n, strategy, threads); repeated measurements of
one key reduce to the minimum ms (best-of, robust to scheduler noise).  For
every key present in both files a delta is printed; keys present in only one
file are listed but never fail the run.  Exit status is 1 iff any common
benchmark regressed by more than --threshold percent (default 20), making it
usable as a CI gate or an advisory step.

Records from SFCP_PROFILE builds additionally carry a `profile` object
(src/util/bench_json.hpp); when both sides have one for a common key, the
top-level phase times (aggregated by first path segment, e.g. "serve",
"inc", "fleet") are diffed too — WARN-ONLY: phase shifts are diagnostic
breadcrumbs, never a gate, and never affect the exit status.

Records may also carry a `counters` object (google-benchmark UserCounters;
bench_fleet exports warm/warm_bytes/evictions/faults this way to document
its bounded warm-set claim).  Counter drift beyond the threshold is
reported the same way — warn-only, never a gate.

Pool threads-scaling keys (BENCH_pool.json; strategies carrying a /t<k>
thread-width segment, e.g. "BM_PoolShardedEdits/k8/t4/burst") additionally
get a scaling report computed WITHIN the new record: for each family the
t1 lane anchors speedup = t1_ms / tN_ms per width.  Reported warn-only by
default; `--min-pool-speedup X` turns it into a gate requiring the widest
lane of every family to reach at least X (exit 1 otherwise).  Note this is
a same-run ratio, not a cross-commit diff — a one-core runner will sit
near 1x, which is why the gate is opt-in.

`--selftest` runs the built-in checks and exits (used by ctest).
"""

import argparse
import json
import os
import re
import sys
import tempfile


def load_records(path):
    """path -> ({key: best_ms}, {key: {top_phase: ns}}, {key: {counter: v}}).

    The phase and counter maps hold the profile/counters of the best-of
    record (when it carried them); phases aggregate by the first path
    segment — the top-level phases.
    """
    best = {}
    profiles = {}
    counters = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not a JSON record: {exc}")
            try:
                key = (rec["name"], int(rec.get("n", 0)), rec.get("strategy", ""),
                       int(rec.get("threads", 0)))
                ms = float(rec["ms"])
            except (KeyError, TypeError, ValueError) as exc:
                raise SystemExit(f"{path}:{lineno}: missing/invalid field: {exc}")
            if key not in best or ms < best[key]:
                best[key] = ms
                profiles.pop(key, None)
                counters.pop(key, None)
                prof = rec.get("profile")
                if prof:
                    top = {}
                    for phase, st in prof.items():
                        seg = phase.split("/", 1)[0]
                        top[seg] = top.get(seg, 0) + int(st.get("ns", 0))
                    profiles[key] = top
                ctr = rec.get("counters")
                if ctr:
                    counters[key] = {k: float(v) for k, v in ctr.items()}
    return best, profiles, counters


def key_str(key):
    name, n, strategy, threads = key
    parts = [name]
    if strategy:
        parts.append(strategy)
    if n:
        parts.append(f"n={n}")
    if threads:
        parts.append(f"t={threads}")
    return " ".join(parts)


def diff(old, new, threshold, old_prof=None, new_prof=None,
         old_ctr=None, new_ctr=None):
    """Returns (lines, regressions) for the report."""
    lines = []
    regressions = []
    old_prof = old_prof or {}
    new_prof = new_prof or {}
    old_ctr = old_ctr or {}
    new_ctr = new_ctr or {}
    common = sorted(set(old) & set(new))
    width = max((len(key_str(k)) for k in common), default=10)
    for key in common:
        o, n = old[key], new[key]
        delta = (n - o) / o * 100.0 if o > 0 else 0.0
        flag = ""
        if delta > threshold:
            flag = "  REGRESSION"
            regressions.append(key)
        elif delta < -threshold:
            flag = "  improved"
        lines.append(f"{key_str(key):<{width}}  {o:>10.3f}ms -> {n:>10.3f}ms  "
                     f"{delta:>+7.1f}%{flag}")
        # Profile phase drift: warn-only breadcrumbs, never a regression.
        op, np = old_prof.get(key), new_prof.get(key)
        if op and np:
            for phase in sorted(set(op) & set(np)):
                po, pn = op[phase], np[phase]
                if po <= 0:
                    continue
                pdelta = (pn - po) / po * 100.0
                if abs(pdelta) > threshold:
                    lines.append(f"  phase {phase}: {po / 1e6:.3f}ms -> "
                                 f"{pn / 1e6:.3f}ms  {pdelta:+.1f}% (warn-only)")
        # Counter drift (e.g. bench_fleet's warm_bytes): warn-only too.
        co, cn = old_ctr.get(key), new_ctr.get(key)
        if co and cn:
            for name in sorted(set(co) & set(cn)):
                vo, vn = co[name], cn[name]
                if vo <= 0:
                    continue
                cdelta = (vn - vo) / vo * 100.0
                if abs(cdelta) > threshold:
                    lines.append(f"  counter {name}: {vo:g} -> {vn:g}  "
                                 f"{cdelta:+.1f}% (warn-only)")
    for key in sorted(set(old) - set(new)):
        lines.append(f"{key_str(key)}: only in old record (skipped)")
    for key in sorted(set(new) - set(old)):
        lines.append(f"{key_str(key)}: new benchmark (no baseline)")
    if not common:
        lines.append("no common benchmarks between the two records")
    return lines, regressions


POOL_SEG = re.compile(r"(?:^|/)t(\d+)(?=/|$)")


def pool_families(records):
    """{key: ms} -> {family: {width: ms}} for keys whose strategy carries a
    /t<k> thread-width segment.  The family key is the record key with that
    segment removed, so k8/t1/burst .. k8/t8/burst collapse into one family
    keyed by (name, n, "k8/burst", threads)."""
    fams = {}
    for key, ms in records.items():
        name, n, strategy, threads = key
        m = POOL_SEG.search(strategy)
        if not m:
            continue
        width = int(m.group(1))
        family = (name, n, POOL_SEG.sub("", strategy).strip("/"), threads)
        fams.setdefault(family, {})[width] = ms
    return fams


def pool_scaling(records, min_speedup=None):
    """Returns (lines, failures): speedup-vs-t1 per family, computed within
    one record file.  With min_speedup set, the WIDEST lane of each family
    must reach it; narrower lanes are always informational."""
    lines = []
    failures = []
    for family, widths in sorted(pool_families(records).items()):
        if widths.get(1, 0) <= 0 or len(widths) < 2:
            continue
        base = widths[1]
        widest = max(widths)
        for width in sorted(widths):
            if width == 1:
                continue
            speedup = base / widths[width] if widths[width] > 0 else 0.0
            gated = min_speedup is not None and width == widest
            flag = ""
            if gated and speedup < min_speedup:
                flag = f"  BELOW FLOOR (< {min_speedup:.2f}x)"
                failures.append((family, width))
            lines.append(f"{key_str(family)} t{width}: {base:.3f}ms / "
                         f"{widths[width]:.3f}ms = {speedup:.2f}x vs t1{flag}")
    return lines, failures


def selftest():
    def record(name, ms, strategy="s", n=64, threads=2, profile=None,
               counters=None):
        rec = {"name": name, "n": n, "strategy": strategy,
               "threads": threads, "ms": ms}
        if profile is not None:
            rec["profile"] = profile
        if counters is not None:
            rec["counters"] = counters
        return json.dumps(rec)

    def phases(apply_ns, fsync_ns):
        return {"serve/epoch_apply": {"ns": apply_ns, "count": 1, "flops": 0,
                                      "bytes": 0},
                "serve/journal_fsync": {"ns": fsync_ns, "count": 1, "flops": 0,
                                        "bytes": 0},
                "inc/repair": {"ns": 1000, "count": 1, "flops": 0, "bytes": 0}}

    def fleet_phases(route_ns, evict_ns):
        return {"fleet/route": {"ns": route_ns, "count": 4, "flops": 0,
                                "bytes": 0},
                "fleet/evict": {"ns": evict_ns, "count": 2, "flops": 0,
                                "bytes": 0}}

    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        new_path = os.path.join(tmp, "new.json")
        with open(old_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join([
                record("a", 10.0), record("a", 12.0),   # best-of -> 10.0
                record("b", 5.0, profile=phases(1_000_000, 1_000_000)),
                # A BENCH_fleet.json-shaped record: fleet/* phases + exported
                # UserCounters (the bounded-warm-set evidence).
                record("BM_FleetZipfEdits", 3.0, strategy="zipf",
                       profile=fleet_phases(2_000_000, 1_000_000),
                       counters={"warm": 1024.0, "warm_bytes": 1_000_000.0,
                                 "evictions": 100.0}),
                record("gone", 1.0),
            ]) + "\n")
        with open(new_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join([
                record("a", 11.0),                       # +10% — within threshold
                # +80% ms — regression; serve phase +150% — warn-only
                record("b", 9.0, profile=phases(4_000_000, 1_000_000)),
                # Same wall time, but warm_bytes +150% — warn-only, no gate.
                record("BM_FleetZipfEdits", 3.0, strategy="zipf",
                       profile=fleet_phases(2_000_000, 1_000_000),
                       counters={"warm": 1024.0, "warm_bytes": 2_500_000.0,
                                 "evictions": 110.0}),
                record("fresh", 2.0),
            ]) + "\n")

        (old, old_prof, old_ctr), (new, new_prof, new_ctr) = (
            load_records(old_path), load_records(new_path))
        assert old[("a", 64, "s", 2)] == 10.0, "best-of reduction failed"
        bkey = ("b", 64, "s", 2)
        # Top-level aggregation: serve = apply + fsync, inc kept separate,
        # fleet/* rolls up under "fleet".
        assert old_prof[bkey] == {"serve": 2_000_000, "inc": 1000}, old_prof
        fkey = ("BM_FleetZipfEdits", 64, "zipf", 2)
        assert old_prof[fkey] == {"fleet": 3_000_000}, old_prof
        assert old_ctr[fkey]["warm_bytes"] == 1_000_000.0, old_ctr
        assert bkey not in old_prof or ("a", 64, "s", 2) not in old_prof
        lines, regressions = diff(old, new, 20.0, old_prof, new_prof,
                                  old_ctr, new_ctr)
        assert len(regressions) == 1 and regressions[0][0] == "b", regressions
        assert any("REGRESSION" in l for l in lines)
        assert any("only in old" in l for l in lines)
        assert any("no baseline" in l for l in lines)
        warn = [l for l in lines if "warn-only" in l]
        # Exactly two warn lines: the warm_bytes counter shift and the serve
        # phase shift; evictions +10% stays under threshold.
        assert len(warn) == 2 and "counter warm_bytes" in warn[0], lines
        assert "phase serve" in warn[1], lines
        assert not any("counter evictions" in l for l in lines), lines
        # Phase/counter drift alone must never regress the run (warn-only):
        flat = {k: 5.0 for k in old}
        _, none = diff(flat, flat, 20.0, old_prof, new_prof, old_ctr, new_ctr)
        assert none == [], "profile/counter drift must not gate"
        _, none = diff(old, new, threshold=100.0)
        assert none == [], "threshold not respected"
        _, empty = diff({}, new, threshold=20.0)
        assert empty == [], "disjoint records must not regress"

        # Pool threads-scaling: k8/t1..t8 lanes collapse into one family;
        # speedup anchors on t1; only the widest lane gates.
        pool = {("BM_PoolShardedEdits", 0, "k8/t1/burst", 8): 8.0,
                ("BM_PoolShardedEdits", 0, "k8/t2/burst", 8): 5.0,
                ("BM_PoolShardedEdits", 0, "k8/t8/burst", 8): 2.0,
                ("BM_ShardedEdits", 0, "k8/burst", 8): 3.0}  # no /t — ignored
        fams = pool_families(pool)
        assert list(fams) == [("BM_PoolShardedEdits", 0, "k8/burst", 8)], fams
        assert fams[("BM_PoolShardedEdits", 0, "k8/burst", 8)] == \
            {1: 8.0, 2: 5.0, 8: 2.0}, fams
        plines, pfail = pool_scaling(pool)
        assert len(plines) == 2 and pfail == [], (plines, pfail)
        assert "t8: 8.000ms / 2.000ms = 4.00x" in plines[1], plines
        _, pfail = pool_scaling(pool, min_speedup=3.0)
        assert pfail == [], "4x widest lane must pass a 3x floor"
        plines, pfail = pool_scaling(pool, min_speedup=5.0)
        assert len(pfail) == 1, "4x widest lane must fail a 5x floor"
        assert any("BELOW FLOOR" in l for l in plines), plines
        # t2 at 1.6x never gates, even under a floor it misses.
        assert not any("t2" in l and "BELOW FLOOR" in l for l in plines)
        # A family with no t1 anchor is skipped, not divided by zero.
        plines, pfail = pool_scaling(
            {("x", 0, "k8/t2/burst", 8): 1.0, ("x", 0, "k8/t4/burst", 8): 0.5},
            min_speedup=3.0)
        assert plines == [] and pfail == [], (plines, pfail)

        # Fleet warm-fan keys (BENCH_fleet.json: BM_FleetConcurrentEdits/
        # {zipf,uniform}/t<k>) group the same way: the /t<k> segment is the
        # family splitter and the id-distribution segment keeps the zipf and
        # uniform streams in separate families, each with its own t1 anchor.
        fleet = {("BM_FleetConcurrentEdits", 0, "zipf/t1", 1): 10.0,
                 ("BM_FleetConcurrentEdits", 0, "zipf/t4", 1): 4.0,
                 ("BM_FleetConcurrentEdits", 0, "uniform/t1", 1): 14.0,
                 ("BM_FleetConcurrentEdits", 0, "uniform/t4", 1): 10.0}
        ffams = pool_families(fleet)
        assert set(ffams) == {("BM_FleetConcurrentEdits", 0, "zipf", 1),
                              ("BM_FleetConcurrentEdits", 0, "uniform", 1)}, ffams
        flines, ffail = pool_scaling(fleet)
        assert ffail == [] and len(flines) == 2, (flines, ffail)
        assert any("zipf" in l and "= 2.50x" in l for l in flines), flines
        assert any("uniform" in l and "= 1.40x" in l for l in flines), flines
    print("bench_diff selftest: ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("new", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    parser.add_argument("--min-pool-speedup", type=float, default=None,
                        metavar="X",
                        help="gate: the widest /t<k> lane of every pool "
                             "family in NEW must reach X speedup over its "
                             "t1 lane (default: report-only)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.old or not args.new:
        parser.error("OLD and NEW record files are required (or --selftest)")

    old, old_prof, old_ctr = load_records(args.old)
    new, new_prof, new_ctr = load_records(args.new)
    lines, regressions = diff(old, new, args.threshold, old_prof, new_prof,
                              old_ctr, new_ctr)
    print(f"bench_diff: {args.old} -> {args.new} (threshold {args.threshold:.0f}%)")
    for line in lines:
        print(f"  {line}")
    pool_lines, pool_failures = pool_scaling(new, args.min_pool_speedup)
    if pool_lines:
        print("bench_diff: pool threads-scaling (within new record)")
        for line in pool_lines:
            print(f"  {line}")
    status = 0
    if regressions:
        print(f"bench_diff: {len(regressions)} benchmark(s) regressed "
              f"by more than {args.threshold:.0f}%")
        status = 1
    if pool_failures:
        print(f"bench_diff: {len(pool_failures)} pool family(ies) below the "
              f"{args.min_pool_speedup:.2f}x scaling floor")
        status = 1
    if status == 0:
        print("bench_diff: no regressions beyond threshold")
    return status


if __name__ == "__main__":
    sys.exit(main())
