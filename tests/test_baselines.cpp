// Unit tests for the baseline solvers: naive refinement, Hopcroft-style
// refinement, and parallel label doubling, all cross-validated.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/verify.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using core::solve_hopcroft;
using core::solve_label_doubling;
using core::solve_naive_refinement;

TEST(Baselines, SingleNode) {
  graph::Instance inst{{0}, {3}};
  EXPECT_EQ(solve_naive_refinement(inst).num_blocks, 1u);
  EXPECT_EQ(solve_hopcroft(inst).num_blocks, 1u);
  EXPECT_EQ(solve_label_doubling(inst).num_blocks, 1u);
}

TEST(Baselines, IdentityFunctionPartitionIsB) {
  // f = identity: Q = B exactly.
  graph::Instance inst;
  inst.f = {0, 1, 2, 3};
  inst.b = {5, 5, 6, 6};
  for (const auto& r :
       {solve_naive_refinement(inst), solve_hopcroft(inst), solve_label_doubling(inst)}) {
    EXPECT_EQ(r.num_blocks, 2u);
    EXPECT_EQ(r.q[0], r.q[1]);
    EXPECT_EQ(r.q[2], r.q[3]);
    EXPECT_NE(r.q[0], r.q[2]);
  }
}

TEST(Baselines, PaperExample22) {
  const auto inst = util::paper_example_2_2();
  const auto expected = util::paper_example_2_2_expected_q();
  EXPECT_EQ(solve_naive_refinement(inst).q, expected);
  EXPECT_EQ(solve_hopcroft(inst).q, expected);
  EXPECT_EQ(solve_label_doubling(inst).q, expected);
}

TEST(Baselines, SingleBlockWhenUniformLabels) {
  // Pure cycle, all same B-label: one block.
  graph::Instance inst;
  inst.f = {1, 2, 3, 0};
  inst.b = {9, 9, 9, 9};
  EXPECT_EQ(solve_naive_refinement(inst).num_blocks, 1u);
  EXPECT_EQ(solve_hopcroft(inst).num_blocks, 1u);
  EXPECT_EQ(solve_label_doubling(inst).num_blocks, 1u);
}

TEST(Baselines, PathNeedsManyRounds) {
  // A long path into a self-loop with distinct end: naive refinement takes
  // ~n rounds; all must still agree.
  const std::size_t n = 300;
  graph::Instance inst;
  inst.f.resize(n);
  inst.b.assign(n, 1);
  inst.f[0] = 0;
  for (u32 i = 1; i < n; ++i) inst.f[i] = i - 1;
  inst.b[0] = 2;  // break symmetry at the sink
  const auto naive = solve_naive_refinement(inst);
  EXPECT_EQ(naive.num_blocks, n);  // distances to the sink differ
  EXPECT_TRUE(core::same_partition(solve_hopcroft(inst).q, naive.q));
  EXPECT_TRUE(core::same_partition(solve_label_doubling(inst).q, naive.q));
  EXPECT_GE(naive.rounds, n - 2);  // witnesses the O(n)-round worst case
}

TEST(Baselines, DoublingUsesLogRounds) {
  util::Rng rng(1101);
  const auto inst = util::random_function(4096, 3, rng);
  const auto r = solve_label_doubling(inst);
  EXPECT_LE(r.rounds, 13u);  // ceil(log2 4096) + 1
}

class BaselineAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaselineAgreement, AllThreeAgreeOnRandomInstances) {
  const std::size_t n = GetParam();
  util::Rng rng(n * 7 + 1);
  for (int iter = 0; iter < 25; ++iter) {
    const u32 nb = 1 + rng.below_u32(5);
    const auto inst = util::random_function(n, nb, rng);
    const auto naive = solve_naive_refinement(inst);
    const auto hopcroft = solve_hopcroft(inst);
    const auto doubling = solve_label_doubling(inst);
    EXPECT_EQ(naive.q, hopcroft.q) << "hopcroft n=" << n << " iter=" << iter;
    EXPECT_EQ(naive.q, doubling.q) << "doubling n=" << n << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineAgreement,
                         ::testing::Values(1, 2, 3, 5, 16, 64, 257, 1000));

TEST(Baselines, StabilityAndRefinementProperties) {
  util::Rng rng(1103);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = util::random_function(500, 3, rng);
    for (const auto& r :
         {solve_naive_refinement(inst), solve_hopcroft(inst), solve_label_doubling(inst)}) {
      EXPECT_TRUE(core::is_refinement(r.q, inst.b));
      EXPECT_TRUE(core::is_stable(r.q, inst.f));
    }
  }
}

}  // namespace
}  // namespace sfcp
