#pragma once
// Minimal starting point (m.s.p.) of a circular string — Section 3.1.
//
// Given a circular string C = (c_0 .. c_{n-1}), the m.s.p. is the index j0
// whose rotation is lexicographically least (for repeating strings: the
// smallest such index).  The paper contributes two parallel algorithms:
//
//   * Algorithm "simple m.s.p."    — block duels with Lemma 3.3 tie-breaks;
//                                    O(log n) time, O(n log n) operations.
//   * Algorithm "efficient m.s.p." — mark minima runs, fold runs into
//                                    ordered pairs, rank-rename (Lemma 3.5,
//                                    length drops to <= 2n/3 per level,
//                                    Lemma 3.6), recurse to n/log n, finish
//                                    with the simple algorithm; O(log n)
//                                    time, O(n log log n) operations
//                                    (Lemma 3.7).
//
// Sequential references: Booth's O(n) algorithm [5] and a Duval/Lyndon-based
// O(n) algorithm (Shiloach [17] plays this role in the paper), plus an
// O(n^2) brute force for testing.

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::strings {

enum class MspStrategy { Brute, Booth, Duval, Simple, Efficient };

/// Booth's least-rotation algorithm, O(n) sequential.
u32 msp_booth(std::span<const u32> s);

/// Lyndon-factorization (Duval-style) least rotation, O(n) sequential.
u32 msp_duval(std::span<const u32> s);

/// O(n^2) reference for tests.
u32 msp_brute(std::span<const u32> s);

/// Paper's Algorithm "simple m.s.p.".  Requires a NON-REPEATING input
/// (unique m.s.p.); use minimal_starting_point() for arbitrary strings.
u32 msp_simple(std::span<const u32> s);

/// Paper's Algorithm "efficient m.s.p.".  Requires a NON-REPEATING input.
u32 msp_efficient(std::span<const u32> s);

/// Strategy-dispatched m.s.p. for arbitrary (possibly repeating) input:
/// repeating strings are first reduced to their smallest repeating prefix,
/// exactly as the paper prescribes.  Returns the smallest minimal index.
u32 minimal_starting_point(std::span<const u32> s, MspStrategy strategy);

/// The rotation of s starting at its m.s.p. (canonical form of the
/// circular string; two circular strings are equal iff their canonical
/// forms are equal).
std::vector<u32> canonical_rotation(std::span<const u32> s,
                                    MspStrategy strategy = MspStrategy::Booth);

}  // namespace sfcp::strings
