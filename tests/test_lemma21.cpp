// Direct machine-checks of the paper's structural lemmas on small random
// instances, brute-forced from the definitions:
//   * Lemma 2.1(ii): A_Q[x] == A_Q[y]  iff  A_B[f^i(x)] == A_B[f^i(y)]
//     for all i = 0..n.
//   * Lemma 2.1(i):  A_Q[x] == A_Q[y]  iff  A_B[x] == A_B[y] and
//     A_Q[f(x)] == A_Q[f(y)] (the fixpoint characterization).
//   * Lemma 4.1: a tree node x at level l has the Q-label of a cycle node
//     iff its whole root path matches the corresponding cycle B-labels.
#include <gtest/gtest.h>

#include "core/coarsest_partition.hpp"
#include "graph/cycle_structure.hpp"
#include "graph/orbits.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

class Lemma21 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lemma21, PartIiStreamCharacterization) {
  util::Rng rng(15000 + GetParam());
  const std::size_t n = GetParam();
  const auto inst = util::random_function(n, 2, rng);
  const auto q = core::solve(inst).q;
  // Brute force the B-label streams A_B[f^i(x)], i = 0..n.
  std::vector<std::vector<u32>> stream(n);
  for (u32 x = 0; x < n; ++x) {
    stream[x].reserve(n + 1);
    u32 cur = x;
    for (std::size_t i = 0; i <= n; ++i) {
      stream[x].push_back(inst.b[cur]);
      cur = inst.f[cur];
    }
  }
  for (u32 x = 0; x < n; ++x) {
    for (u32 y = 0; y < n; ++y) {
      EXPECT_EQ(q[x] == q[y], stream[x] == stream[y]) << x << "," << y;
    }
  }
}

TEST_P(Lemma21, PartIFixpointCharacterization) {
  util::Rng rng(15100 + GetParam());
  const auto inst = util::random_function(GetParam(), 3, rng);
  const auto q = core::solve(inst).q;
  for (u32 x = 0; x < inst.size(); ++x) {
    for (u32 y = 0; y < inst.size(); ++y) {
      const bool rhs = inst.b[x] == inst.b[y] && q[inst.f[x]] == q[inst.f[y]];
      EXPECT_EQ(q[x] == q[y], rhs) << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, Lemma21, ::testing::Values(1, 2, 7, 25, 60, 120));

TEST(Lemma41, TreeNodeSharesCycleLabelIffRootPathMatches) {
  util::Rng rng(15200);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = util::random_function(150, 2, rng);
    const auto q = core::solve(inst).q;
    const auto cs = graph::cycle_structure(inst.f);
    const auto orb = graph::compute_orbits(inst.f, cs);
    for (u32 x = 0; x < inst.size(); ++x) {
      if (cs.on_cycle[x]) continue;
      // Walk the root path x .. r (r = entry cycle node) and, in lockstep,
      // the cycle backwards from r: x's corresponding cycle node at level
      // l is f^{k-l mod k}(r) — x keeps a cycle label iff every node on
      // the path matches its counterpart's B-label (Lemma 4.1).
      const u32 l = orb.tail[x];
      const u32 r = orb.entry[x];
      const u32 k = orb.cycle_len[x];
      // corresponding cycle node: rank(r) - l mod k along the cycle.
      const u32 c = cs.cycle_of[r];
      const u32 start = (cs.rank[r] + k - (l % k)) % k;
      bool matches = true;
      u32 cur = x;
      for (u32 j = 0; j <= l && matches; ++j) {
        const u32 cyc_node = cs.node_at(c, (start + j) % k);
        matches = inst.b[cur] == inst.b[cyc_node];
        cur = inst.f[cur];
      }
      const u32 expected_cycle_node = cs.node_at(c, start);
      const bool shares = q[x] == q[expected_cycle_node];
      EXPECT_EQ(shares, matches) << "node " << x << " iter " << iter;
    }
  }
}

}  // namespace
}  // namespace sfcp
