// Tests for the string matching module (the substrate behind the paper's
// period-finding citations [6, 20]).
#include <gtest/gtest.h>

#include <algorithm>

#include "strings/matching.hpp"
#include "strings/period.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using strings::circular_contains;
using strings::count_occurrences;
using strings::failure_function;
using strings::find_occurrences;
using strings::MatchStrategy;

std::vector<u32> brute_occurrences(std::span<const u32> text, std::span<const u32> pattern) {
  std::vector<u32> hits;
  if (pattern.empty()) {
    for (std::size_t i = 0; i <= text.size(); ++i) hits.push_back(static_cast<u32>(i));
    return hits;
  }
  if (pattern.size() > text.size()) return hits;
  for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (std::equal(pattern.begin(), pattern.end(), text.begin() + i)) {
      hits.push_back(static_cast<u32>(i));
    }
  }
  return hits;
}

class MatchingAllStrategies : public ::testing::TestWithParam<MatchStrategy> {};

TEST_P(MatchingAllStrategies, KnownSmall) {
  // text = abracadabra (a=1,b=2,r=3,c=4,d=5), pattern = abra.
  std::vector<u32> text{1, 2, 3, 1, 4, 1, 5, 1, 2, 3, 1};
  std::vector<u32> pattern{1, 2, 3, 1};
  EXPECT_EQ(find_occurrences(text, pattern, GetParam()), (std::vector<u32>{0, 7}));
}

TEST_P(MatchingAllStrategies, OverlappingOccurrences) {
  std::vector<u32> text{1, 1, 1, 1, 1};
  std::vector<u32> pattern{1, 1};
  EXPECT_EQ(find_occurrences(text, pattern, GetParam()), (std::vector<u32>{0, 1, 2, 3}));
}

TEST_P(MatchingAllStrategies, EmptyPatternMatchesEverywhere) {
  std::vector<u32> text{5, 6, 7};
  EXPECT_EQ(find_occurrences(text, {}, GetParam()), (std::vector<u32>{0, 1, 2, 3}));
}

TEST_P(MatchingAllStrategies, PatternLongerThanText) {
  std::vector<u32> text{1, 2};
  std::vector<u32> pattern{1, 2, 3};
  EXPECT_TRUE(find_occurrences(text, pattern, GetParam()).empty());
}

TEST_P(MatchingAllStrategies, MatchesBruteForceRandom) {
  util::Rng rng(8001 + static_cast<u32>(GetParam()));
  for (int iter = 0; iter < 60; ++iter) {
    const auto text = util::random_string(1 + rng.below(300), 2, rng);
    // Half the time sample the pattern from the text so hits are likely.
    std::vector<u32> pattern;
    if (rng.below(2) == 0 && text.size() > 2) {
      const u32 start = rng.below(static_cast<u32>(text.size() - 1));
      const u32 len = 1 + rng.below(static_cast<u32>(text.size() - start));
      pattern.assign(text.begin() + start, text.begin() + start + len);
    } else {
      pattern = util::random_string(1 + rng.below(6), 2, rng);
    }
    EXPECT_EQ(find_occurrences(text, pattern, GetParam()), brute_occurrences(text, pattern))
        << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, MatchingAllStrategies,
                         ::testing::Values(MatchStrategy::Kmp, MatchStrategy::Z,
                                           MatchStrategy::Parallel),
                         [](const auto& info) {
                           switch (info.param) {
                             case MatchStrategy::Kmp: return "Kmp";
                             case MatchStrategy::Z: return "Z";
                             default: return "Parallel";
                           }
                         });

TEST(FailureFunction, KnownValues) {
  // s = ababaca -> fail = 0 0 1 2 3 0 1
  std::vector<u32> s{1, 2, 1, 2, 1, 3, 1};
  EXPECT_EQ(failure_function(s), (std::vector<u32>{0, 0, 1, 2, 3, 0, 1}));
}

TEST(FailureFunction, PeriodRelation) {
  // n - fail[n-1] is the smallest (not necessarily dividing) period.
  util::Rng rng(8005);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t p = 1 + rng.below(6);
    const std::size_t reps = 2 + rng.below(5);
    const auto s = util::periodic_string(p * reps, p, 3, rng);
    const auto fail = failure_function(s);
    const u32 period = static_cast<u32>(s.size()) - fail.back();
    EXPECT_EQ(strings::smallest_period_seq(s) % period, 0u)
        << "dividing period must be a multiple of the smallest period";
  }
}

TEST(CountOccurrences, AgreesWithFind) {
  util::Rng rng(8009);
  for (int iter = 0; iter < 40; ++iter) {
    const auto text = util::random_string(1 + rng.below(200), 2, rng);
    const auto pattern = util::random_string(1 + rng.below(5), 2, rng);
    EXPECT_EQ(count_occurrences(text, pattern),
              find_occurrences(text, pattern, MatchStrategy::Kmp).size());
  }
}

TEST(CircularContains, RotationsAlwaysContained) {
  util::Rng rng(8013);
  for (int iter = 0; iter < 30; ++iter) {
    const auto s = util::random_string(2 + rng.below(50), 3, rng);
    const u32 r = rng.below(static_cast<u32>(s.size()));
    const u32 len = 1 + rng.below(static_cast<u32>(s.size()));
    std::vector<u32> piece(len);
    for (u32 t = 0; t < len; ++t) piece[t] = s[(r + t) % s.size()];
    EXPECT_TRUE(circular_contains(s, piece));
  }
}

TEST(CircularContains, NegativeCases) {
  std::vector<u32> hay{1, 2, 3};
  EXPECT_FALSE(circular_contains(hay, std::vector<u32>{4}));
  EXPECT_FALSE(circular_contains(hay, std::vector<u32>{1, 3}));
  EXPECT_TRUE(circular_contains(hay, std::vector<u32>{3, 1}));  // wraps
  EXPECT_FALSE(circular_contains(hay, std::vector<u32>{1, 2, 3, 1}));  // too long
  EXPECT_TRUE(circular_contains(hay, std::vector<u32>{}));
}

}  // namespace
}  // namespace sfcp
