// Domain example: necklace (circular string) canonicalization and
// deduplication with the paper's m.s.p. algorithms (Section 3.1).
//
// Necklaces model cyclic structures (ring polymers, circular DNA, rotating
// schedules).  Two necklaces are the same object iff one is a rotation of
// the other; the canonical form is the rotation starting at the minimal
// starting point.  This example generates rotated duplicates, deduplicates
// them via canonical forms, and cross-checks all m.s.p. strategies.
//
//   $ ./necklace_canonicalization [num_necklaces] [length] [seed]
#include <cstdlib>
#include <iostream>
#include <map>

#include "sfcp.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  const std::size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::size_t len = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const u64 seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 99;
  util::Rng rng(seed);

  // Generate a pool of base necklaces, then emit rotated copies.
  const std::size_t distinct = std::max<std::size_t>(1, count / 10);
  std::vector<std::vector<u32>> base(distinct);
  for (auto& s : base) s = util::random_string(len, 4, rng);
  std::vector<std::vector<u32>> pool(count);
  for (auto& s : pool) {
    const auto& b = base[rng.below(distinct)];
    const std::size_t rot = rng.below(len);
    s.resize(len);
    for (std::size_t i = 0; i < len; ++i) s[i] = b[(i + rot) % len];
  }

  util::Timer timer;
  std::map<std::vector<u32>, std::size_t> canonical_counts;
  for (const auto& s : pool) {
    canonical_counts[strings::canonical_rotation(s, strings::MspStrategy::Efficient)]++;
  }
  std::cout << "Canonicalized " << count << " necklaces of length " << len << " in "
            << timer.millis() << " ms\n"
            << "Distinct necklaces: " << canonical_counts.size() << " (pool drew from "
            << distinct << " bases; rotations collapse)\n";

  // Cross-check: every strategy yields the same canonical form.
  std::size_t checked = 0;
  for (const auto& s : pool) {
    const auto ref = strings::canonical_rotation(s, strings::MspStrategy::Booth);
    if (strings::canonical_rotation(s, strings::MspStrategy::Efficient) != ref ||
        strings::canonical_rotation(s, strings::MspStrategy::Simple) != ref ||
        strings::canonical_rotation(s, strings::MspStrategy::Duval) != ref) {
      std::cerr << "MISMATCH on necklace " << checked << "\n";
      return 1;
    }
    if (++checked == 200) break;  // spot-check a sample
  }
  std::cout << "Strategy cross-check passed on " << checked << " samples\n";

  // Show one canonicalization in detail.
  const auto& s = pool[0];
  const u32 j0 = strings::minimal_starting_point(s, strings::MspStrategy::Efficient);
  std::cout << "\nExample: m.s.p. of necklace #0 is index " << j0 << "\n  raw      = ";
  for (std::size_t i = 0; i < std::min<std::size_t>(24, s.size()); ++i) std::cout << s[i];
  std::cout << "...\n  canonical= ";
  const auto canon = strings::canonical_rotation(s);
  for (std::size_t i = 0; i < std::min<std::size_t>(24, canon.size()); ++i) std::cout << canon[i];
  std::cout << "...\n";
  return 0;
}
