// Unit tests for the two renaming backends (sorted = order-preserving dense
// ranks; hashed = arbitrary-CRCW BB-table emulation) and canonicalization.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "prim/rename.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(RenameSorted, Empty) {
  std::vector<u64> keys;
  const auto r = prim::rename_sorted(keys);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.num_classes, 0u);
}

TEST(RenameSorted, DenseRanksInKeyOrder) {
  std::vector<u64> keys{30, 10, 20, 10};
  const auto r = prim::rename_sorted(keys);
  EXPECT_EQ(r.num_classes, 3u);
  EXPECT_EQ(r.labels, (std::vector<u32>{2, 0, 1, 0}));
}

TEST(RenameSorted, AllEqual) {
  std::vector<u64> keys(100, 5);
  const auto r = prim::rename_sorted(keys);
  EXPECT_EQ(r.num_classes, 1u);
  for (const u32 l : r.labels) EXPECT_EQ(l, 0u);
}

TEST(RenameSorted, OrderPreservationProperty) {
  util::Rng rng(23);
  std::vector<u64> keys(5000);
  for (auto& k : keys) k = rng.below(500);
  const auto r = prim::rename_sorted(keys);
  for (std::size_t i = 0; i < keys.size(); i += 7) {
    for (std::size_t j = i + 1; j < keys.size(); j += 131) {
      EXPECT_EQ(keys[i] < keys[j], r.labels[i] < r.labels[j]);
      EXPECT_EQ(keys[i] == keys[j], r.labels[i] == r.labels[j]);
    }
  }
}

TEST(RenamePairsSorted, LexicographicOrder) {
  std::vector<u32> a{1, 1, 2, 0};
  std::vector<u32> b{5, 3, 0, 9};
  const auto r = prim::rename_pairs_sorted(a, b);
  // pairs: (1,5) (1,3) (2,0) (0,9) -> sorted (0,9)<(1,3)<(1,5)<(2,0)
  EXPECT_EQ(r.labels, (std::vector<u32>{2, 1, 3, 0}));
  EXPECT_EQ(r.num_classes, 4u);
}

TEST(RenameHashed, EqualityPreserved) {
  util::Rng rng(29);
  std::vector<u64> keys(20000);
  for (auto& k : keys) k = rng.below(300);
  const auto r = prim::rename_hashed(keys);
  std::unordered_map<u64, u32> seen;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto [it, inserted] = seen.emplace(keys[i], r.labels[i]);
    EXPECT_EQ(it->second, r.labels[i]) << "equal keys must share a label";
  }
  // Distinct keys must get distinct labels.
  std::unordered_map<u32, u64> inverse;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto [it, inserted] = inverse.emplace(r.labels[i], keys[i]);
    EXPECT_EQ(it->second, keys[i]) << "distinct keys must get distinct labels";
  }
}

TEST(RenameHashed, LabelsAreWinnerIndices) {
  std::vector<u64> keys{9, 9, 9, 4};
  const auto r = prim::rename_hashed(keys);
  EXPECT_LT(r.labels[0], keys.size());
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_EQ(r.labels[1], r.labels[2]);
  EXPECT_NE(r.labels[0], r.labels[3]);
}

TEST(Canonicalize, FirstOccurrenceOrder) {
  std::vector<u32> labels{42, 7, 42, 9, 7};
  const auto r = prim::canonicalize_labels(labels);
  EXPECT_EQ(r.labels, (std::vector<u32>{0, 1, 0, 2, 1}));
  EXPECT_EQ(r.num_classes, 3u);
}

TEST(Canonicalize, Idempotent) {
  util::Rng rng(31);
  std::vector<u32> labels(1000);
  for (auto& l : labels) l = rng.below_u32(50);
  const auto once = prim::canonicalize_labels(labels);
  const auto twice = prim::canonicalize_labels(once.labels);
  EXPECT_EQ(once.labels, twice.labels);
}

TEST(RenameBackends, AgreeOnEquivalenceClasses) {
  util::Rng rng(37);
  std::vector<u32> a(3000), b(3000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.below_u32(40);
    b[i] = rng.below_u32(40);
  }
  const auto sorted = prim::rename_pairs_sorted(a, b);
  const auto hashed = prim::rename_pairs_hashed(a, b);
  // Same partition into classes even though label values differ.
  EXPECT_EQ(prim::canonicalize_labels(sorted.labels).labels,
            prim::canonicalize_labels(hashed.labels).labels);
}

}  // namespace
}  // namespace sfcp
