#include "util/dot_export.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sfcp::util {

void write_dot(std::ostream& os, const graph::Instance& inst, std::span<const u32> q,
               const DotOptions& opts) {
  const std::size_t n = inst.size();
  if (opts.cluster_by_q && q.size() != n) {
    throw std::invalid_argument("write_dot: cluster_by_q requires q of matching size");
  }
  os << "digraph " << opts.graph_name << " {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";

  if (opts.cluster_by_q) {
    // One subgraph cluster per Q-block, in label order.
    u32 blocks = 0;
    for (const u32 v : q) blocks = std::max(blocks, v + 1);
    std::vector<std::vector<u32>> members(blocks);
    for (u32 x = 0; x < n; ++x) members[q[x]].push_back(x);
    for (u32 c = 0; c < blocks; ++c) {
      os << "  subgraph cluster_q" << c << " {\n    label=\"Q" << c << "\";\n";
      for (const u32 x : members[c]) {
        os << "    n" << x;
        if (opts.show_b_labels) os << " [label=\"" << x << "\\nB=" << inst.b[x] << "\"]";
        os << ";\n";
      }
      os << "  }\n";
    }
  } else {
    for (u32 x = 0; x < n; ++x) {
      os << "  n" << x;
      if (opts.show_b_labels) os << " [label=\"" << x << "\\nB=" << inst.b[x] << "\"]";
      os << ";\n";
    }
  }
  for (u32 x = 0; x < n; ++x) {
    os << "  n" << x << " -> n" << inst.f[x] << ";\n";
  }
  os << "}\n";
}

std::string to_dot(const graph::Instance& inst, std::span<const u32> q, const DotOptions& opts) {
  std::ostringstream os;
  write_dot(os, inst, q, opts);
  return os.str();
}

}  // namespace sfcp::util
