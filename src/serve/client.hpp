#pragma once
// serve::Client — the blocking `sfcp-wire v1` peer of serve::Server, used by
// `sfcp_cli connect`, the ported examples/incremental_server REPL, the
// loopback fuzz lane and the serve bench.
//
// Every request method sends one frame and blocks for its response; Notify
// frames arriving in between (the SUBSCRIBE stream is asynchronous by
// design) are queued and drained through next_notification().  An Error
// response throws std::runtime_error carrying the server's message.
//
// For pipelined throughput (the bench), send_edits()/await_edited() split
// apply() into its fire and collect halves so many EDIT frames can be in
// flight at once.

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "inc/edit.hpp"
#include "serve/protocol.hpp"

namespace sfcp::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects, exchanges handshake magics and verifies the peer speaks
  /// `sfcp-wire v1`.  Throws std::runtime_error on refusal or a foreign
  /// magic.
  static Client connect(const std::string& host, std::uint16_t port);

  bool is_open() const noexcept { return fd_ >= 0; }
  void close();

  /// Sends the edits and blocks for the EDITED ack; returns the epoch the
  /// batch landed in.
  u64 apply(std::span<const inc::Edit> edits);

  struct ViewInfo {
    u64 epoch = 0;
    u32 n = 0;
    u32 num_classes = 0;
  };
  ViewInfo view();

  u32 class_of(u32 node);
  std::vector<u32> members(u32 cls);

  struct Labels {
    u64 epoch = 0;
    u32 num_classes = 0;
    std::vector<u32> labels;  ///< canonical per-node labels, n entries
  };
  Labels labels();

  /// STATS frame: named u64 counters, in server order.
  std::vector<std::pair<std::string, u64>> stats();

  struct Stats {
    std::vector<std::pair<std::string, u64>> counters;  ///< server order
    prof::ProfileTree profile;  ///< empty unless the server sent the section
  };
  /// STATS frame including the optional phase-profile section (empty tree
  /// against an old-format server or a non-profiling build).
  Stats stats_full();

  /// Asks the server to checkpoint (empty path = its configured one);
  /// returns the checkpointed epoch.
  u64 checkpoint(const std::string& path = "");

  /// Registers for the change feed; returns the current served epoch.
  u64 subscribe();

  /// Next queued/arriving Notify; blocks up to timeout_ms (<0 = forever,
  /// 0 = drain queued + already-received bytes only).  std::nullopt on
  /// timeout.
  std::optional<Notification> next_notification(int timeout_ms);

  // ---- fleet mode (FLEET_EDIT / FLEET_VIEW) ------------------------------

  /// Sends the edits to instance `instance` of a fleet-mode server and
  /// blocks for the EDITED ack; returns the INSTANCE's epoch after the
  /// flush.
  u64 fleet_apply(u64 instance, std::span<const inc::Edit> edits);

  /// ViewInfo of one instance of a fleet-mode server.
  ViewInfo fleet_view(u64 instance);

  // ---- pipelining (bench) ------------------------------------------------

  /// Fires an EDIT frame without waiting for its ack.
  void send_edits(std::span<const inc::Edit> edits);

  /// Fires a FLEET_EDIT frame without waiting for its ack.
  void send_fleet_edits(u64 instance, std::span<const inc::Edit> edits);

  /// Collects one outstanding EDITED ack (FIFO); returns its epoch.
  u64 await_edited();

 private:
  explicit Client(int fd);
  void send_frame_(FrameType type, std::string_view payload);
  void send_raw_(const char* data, std::size_t len);
  /// Blocks until a non-Notify frame arrives (Notifys are queued); throws
  /// on Error frames and on connection loss.
  Frame await_response_(FrameType expected);
  bool fill_(int timeout_ms);  ///< one blocking read; false on timeout

  int fd_ = -1;
  FrameSplitter in_;
  std::deque<Notification> notifications_;
};

}  // namespace sfcp::serve
