#include "graph/reverse_adjacency.hpp"

#include "pram/metrics.hpp"

namespace sfcp::graph {

void ReverseAdjacency::rebuild(std::span<const u32> f) {
  const std::size_t n = f.size();
  preds_.resize(n);
  pos_.resize(n);
  for (auto& list : preds_) list.clear();
  for (std::size_t x = 0; x < n; ++x) {
    pos_[x] = static_cast<u32>(preds_[f[x]].size());
    preds_[f[x]].push_back(static_cast<u32>(x));
  }
  pram::charge(2 * n);
}

void ReverseAdjacency::retarget(u32 x, u32 old_target, u32 new_target) {
  if (old_target == new_target) return;
  auto& old_list = preds_[old_target];
  const u32 p = pos_[x];
  const u32 moved = old_list.back();
  old_list[p] = moved;
  pos_[moved] = p;
  old_list.pop_back();
  pos_[x] = static_cast<u32>(preds_[new_target].size());
  preds_[new_target].push_back(x);
  pram::charge(4);
}

bool dirty_region(const ReverseAdjacency& radj, u32 x, std::size_t budget,
                  std::vector<u32>& out) {
  // Every node has exactly one out-edge, so each v != x sits in exactly one
  // predecessor list and is discovered at most once; only the start node can
  // be re-encountered (when x lies on a cycle) and needs an explicit skip.
  out.clear();
  out.push_back(x);
  if (out.size() > budget) return false;
  for (std::size_t head = 0; head < out.size(); ++head) {
    for (u32 p : radj.preds(out[head])) {
      if (p == x) continue;
      out.push_back(p);
      if (out.size() > budget) return false;
    }
  }
  pram::charge(out.size());
  return true;
}

}  // namespace sfcp::graph
