#pragma once
// Finding the cycle nodes of a pseudo-forest — Section 5, Algorithm
// "finding cycle nodes".
//
// The paper's method: double every edge (x, f(x)) with a buddy (f(x), x),
// apply the Tarjan–Vishkin Euler-partition successor rule [19] to the
// resulting multigraph, and observe that each pseudo-tree decomposes into
// exactly two Euler cycles such that a GRAPH-cycle edge and its buddy land
// in different Euler cycles while a tree edge and its buddy share one.
//
// Strategies:
//   * Sequential     — visited-walk reference, O(n)
//   * FunctionPowers — cycle nodes = image of f^N (N >= n) by repeated
//                      squaring, O(n log n) work / O(log n) depth
//   * EulerTour      — the paper's §5 algorithm

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::graph {

enum class CycleDetectStrategy { Sequential, FunctionPowers, EulerTour };

/// on_cycle[x] = 1 iff x lies on a cycle of the functional graph of f.
std::vector<u8> find_cycle_nodes(std::span<const u32> f,
                                 CycleDetectStrategy strategy = CycleDetectStrategy::EulerTour);

/// Workspace-reusing variant: writes the flags into `on_cycle` (resized to
/// f.size(); existing capacity is reused across calls).
void find_cycle_nodes_into(std::span<const u32> f, CycleDetectStrategy strategy,
                           std::vector<u8>& on_cycle);

}  // namespace sfcp::graph
