// E6 — Lemma 4.3: tree node labelling in O(n) operations.
//
// Ablation of the three step-5 strategies (DESIGN.md): LevelSynchronous
// realizes the Kedem–Palem O(n)-operation bound (depth = tree height),
// AncestorDoubling trades O(n log d) work for O(log n) depth, and
// SequentialDFS is the reference.  Shapes: deep path (worst depth), bushy
// (worst fan-out), random (typical ~sqrt(n) depth).
#include <iostream>

#include "core/coarsest_partition.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E6 (Lemma 4.3): tree node labelling strategies\n\n";
  util::Table table({"n", "shape", "strategy", "blocks", "ops", "ops/n", "ms"});
  util::Rng rng(6);

  const auto run = [&](const char* shape, const graph::Instance& inst,
                       core::TreeLabelStrategy strat, const char* name) {
    core::Options opt = core::Options::parallel();
    opt.tree_labeling.strategy = strat;
    pram::Metrics m;
    util::Timer timer;
    core::Result r;
    {
      pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
      r = core::solve(inst, opt);
    }
    const double ms = timer.millis();
    table.add_row(inst.size(), shape, name, r.num_blocks, m.ops(),
                  static_cast<double>(m.ops()) / static_cast<double>(inst.size()), ms);
    json.record("e6_tree", inst.size(), std::string(name) + "/" + shape, pram::threads(), ms);
  };

  for (int e = 16; e <= 20; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    const auto deep = util::long_tail(n, 16, 2, rng);
    const auto wide = util::bushy(n, 16, 64, 2, rng);
    const auto rnd = util::random_function(n, 2, rng);
    for (const auto& [shape, inst] :
         {std::pair<const char*, const graph::Instance*>{"deep-path", &deep},
          {"bushy", &wide},
          {"random", &rnd}}) {
      run(shape, *inst, core::TreeLabelStrategy::LevelSynchronous, "level-sync (KP O(n))");
      run(shape, *inst, core::TreeLabelStrategy::AncestorDoubling, "ancestor-doubling");
      run(shape, *inst, core::TreeLabelStrategy::SequentialDFS, "sequential dfs");
    }
  }
  table.print();
  std::cout << "\n(level-sync's ops/n stays flat across shapes — the O(n) operation\n"
            << " bound of Lemma 4.3; ancestor-doubling pays a log(depth) factor on\n"
            << " the deep-path shape and wins depth instead.)\n";
  return 0;
}
