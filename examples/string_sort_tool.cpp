// Domain example: sorting a corpus of variable-length keys (Lemma 3.8).
//
// Think suffix-array construction over tokenized records, or ordering
// composite database keys of ragged width: the paper's fold-and-rank string
// sort does it in O(n log log n) operations.  This tool generates a ragged
// corpus, sorts it with all three strategies, times them, and prints a
// sample of the sorted order.
//
//   $ ./string_sort_tool [num_strings] [total_symbols] [seed]
#include <cstdlib>
#include <iostream>

#include "sfcp.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  const std::size_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const std::size_t total = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500000;
  const u64 seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2024;
  util::Rng rng(seed);
  const auto list = util::random_string_list(m, total, 1 << 20,
                                             util::LengthDistribution::Uniform, rng);
  std::cout << "Corpus: " << list.size() << " strings, " << list.total_symbols()
            << " total symbols, alphabet 2^20\n\n";

  std::vector<u32> reference;
  const std::pair<const char*, strings::StringSortStrategy> strategies[] = {
      {"paper parallel (fold+rank)", strings::StringSortStrategy::Parallel},
      {"std::stable_sort", strings::StringSortStrategy::StdSort},
      {"msd radix quicksort", strings::StringSortStrategy::MsdRadix},
  };
  for (const auto& [name, strat] : strategies) {
    util::Timer timer;
    pram::Metrics metrics;
    std::vector<u32> order;
    {
      const pram::ExecutionContext ctx = pram::ExecutionContext{}.with_metrics(&metrics);
      pram::ScopedContext guard(ctx);
      order = strings::sort_strings(list, strat);
    }
    std::cout << name << ": " << timer.millis() << " ms, " << metrics.ops() << " ops\n";
    if (reference.empty()) {
      reference = order;
    } else if (order != reference) {
      std::cerr << "ORDER MISMATCH for " << name << "\n";
      return 1;
    }
  }

  std::cout << "\nAll strategies agree.  First 5 strings in sorted order:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, reference.size()); ++i) {
    const auto v = list.view(reference[i]);
    std::cout << "  #" << reference[i] << " (len " << v.size() << "): ";
    for (std::size_t j = 0; j < std::min<std::size_t>(8, v.size()); ++j) std::cout << v[j] << ' ';
    std::cout << (v.size() > 8 ? "...\n" : "\n");
  }
  return 0;
}
