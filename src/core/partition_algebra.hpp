#pragma once
// The lattice of partitions of {0..n-1}, represented as label arrays.
//
// The coarsest partition problem lives inside this lattice: Q is the meet-
// closure of B under f-preimage refinement, i.e. the coarsest element that
// refines B and is f-stable.  This module provides the lattice operations
// the tests and downstream users need to state such facts directly:
//
//   * meet  — coarsest common refinement (blocks = nonempty intersections)
//   * join  — finest common coarsening (transitive closure of block overlap)
//   * is_refinement_of / same — the partial order and its equality
//   * pullback — the partition x ~ y iff labels[f(x)] == labels[f(y)]
//                (one refinement step of the SFCP fixpoint)
//
// All labellings returned are canonical (first-occurrence order), so any
// two equal partitions compare == as vectors.

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::core {

/// Canonicalizes labels to first-occurrence order (same partition, labels
/// in [0, blocks)).
std::vector<u32> canonical_partition(std::span<const u32> labels);

/// Coarsest common refinement: x ~ y iff a[x]==a[y] AND b[x]==b[y].
std::vector<u32> partition_meet(std::span<const u32> a, std::span<const u32> b);

/// Finest common coarsening: the transitive closure of "same block in a OR
/// same block in b" (union-find based, near-linear).
std::vector<u32> partition_join(std::span<const u32> a, std::span<const u32> b);

/// True iff `fine` refines `coarse` (every fine block inside a coarse one).
bool is_refinement_of(std::span<const u32> fine, std::span<const u32> coarse);

/// The f-pullback of a partition: x ~ y iff labels[f(x)] == labels[f(y)].
std::vector<u32> pullback(std::span<const u32> labels, std::span<const u32> f);

/// One SFCP refinement round: meet(labels, pullback(labels, f)).  Iterating
/// to a fixpoint from B yields the coarsest stable refinement (the oracle
/// used by core::verify).
std::vector<u32> refine_step(std::span<const u32> labels, std::span<const u32> f);

/// Number of blocks of a canonical labelling (max + 1; 0 for empty).
u32 block_count(std::span<const u32> canonical_labels);

}  // namespace sfcp::core
