#pragma once
// String-keyed strategy registry: every interchangeable pipeline combination
// behind one uniform, enumerable entry point (the parallel-string-sorting
// codebase's "register each variant, compare them all" idiom).
//
//   for (const auto& s : sfcp::registry().all()) {
//     sfcp::core::Solver solver(s.options);
//     ... solver.solve(inst) ...
//   }
//
//   core::Options opt = sfcp::registry().at("euler-jump-level");
//
// Built-in names are `<detect>-<structure>-<tree>` over
//   detect:    seq | powers | euler     (cycle-node detection, §5)
//   structure: seq | jump               (cycle structure, §3 step 1)
//   tree:      level | double | dfs     (tree-node labelling, §4 step 5)
// plus the aliases "parallel" (the paper's default pipeline) and
// "sequential" (the linear-time sequential baseline, Paige–Tarjan–Bonic's
// role).  Callers may add() their own entries at startup (e.g. tuned
// configurations for a benchmark scenario); the registry is not internally
// synchronized, so mutate it before spawning concurrent users.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/coarsest_partition.hpp"

namespace sfcp::core {

struct StrategyInfo {
  std::string name;         ///< unique registry key
  std::string description;  ///< one-line human-readable summary
  Options options;          ///< full pipeline configuration
};

class StrategyRegistry {
 public:
  /// Entries in registration order (built-ins first, deterministic).
  std::span<const StrategyInfo> all() const noexcept { return entries_; }

  /// All registry keys, in registration order.
  std::vector<std::string> names() const;

  /// Entry by name, or null when absent.
  const StrategyInfo* find(std::string_view name) const noexcept;

  /// Options by name; throws std::out_of_range naming the key when absent.
  const Options& at(std::string_view name) const;

  /// Registers (or, for an existing name, replaces) an entry.
  void add(StrategyInfo info);

 private:
  std::vector<StrategyInfo> entries_;
};

/// The process-wide registry, preloaded with every built-in combination.
StrategyRegistry& registry();

}  // namespace sfcp::core

namespace sfcp {
using core::registry;  // spelled sfcp::registry() at call sites
}  // namespace sfcp
