#pragma once
// Functional graphs (pseudo-forests): the directed graph G = (V, E) with
// V = {0..n-1} and edges (x, f(x)) — outdegree exactly 1, so every weakly
// connected component is a pseudo-tree (one cycle with trees hanging off it).

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::graph {

/// An SFCP instance: the function f and the initial-partition labels B.
/// (The paper's arrays A_f and A_B, 0-indexed.)
struct Instance {
  std::vector<u32> f;  ///< f[x] in [0, n)
  std::vector<u32> b;  ///< B-label of x (arbitrary u32 values)

  std::size_t size() const { return f.size(); }
};

/// Throws std::invalid_argument if the instance is malformed.
void validate(const Instance& inst);

/// g = f^k computed by repeated squaring, O(n log k) work.
std::vector<u32> iterate_function(std::span<const u32> f, u64 k);

/// indegree[v] = |{x : f(x) = v}|.
std::vector<u32> indegrees(std::span<const u32> f);

}  // namespace sfcp::graph
