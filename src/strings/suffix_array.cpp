#include "strings/suffix_array.hpp"

#include <algorithm>
#include <stdexcept>

#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"
#include "prim/rename.hpp"
#include "strings/period.hpp"

namespace sfcp::strings {

namespace {

// Rank pair key at doubling distance k: (rank[i], rank[i+k]+1) with 0 for
// "past the end", packed so numeric u64 order == lexicographic pair order.
u64 doubling_key(std::span<const u32> rank, std::size_t n, std::size_t i, std::size_t k) {
  const u32 hi = rank[i];
  const u32 lo = (i + k < n) ? rank[i + k] + 1 : 0u;
  return pack_pair(hi, lo);
}

}  // namespace

SuffixArray build_suffix_array(std::span<const u32> s) {
  const std::size_t n = s.size();
  SuffixArray out;
  if (n == 0) return out;

  // Round 0: rank by single character (order-preserving renaming).
  std::vector<u64> keys(n);
  pram::parallel_for(0, n, [&](std::size_t i) { keys[i] = s[i]; });
  prim::RenameResult r = prim::rename_sorted(keys);
  std::vector<u32> rank = std::move(r.labels);
  u32 classes = r.num_classes;

  for (std::size_t k = 1; classes < n && k < n; k <<= 1) {
    pram::parallel_for(0, n, [&](std::size_t i) { keys[i] = doubling_key(rank, n, i, k); });
    r = prim::rename_sorted(keys);
    rank = std::move(r.labels);
    classes = r.num_classes;
    ++out.rounds;
  }
  if (classes < n) {
    // Only possible for strings with equal suffixes, which cannot happen
    // (suffixes have distinct lengths); guards against internal corruption.
    throw std::logic_error("suffix ranks did not separate");
  }

  out.rank = std::move(rank);
  out.sa.assign(n, 0);
  pram::parallel_for(0, n, [&](std::size_t i) { out.sa[out.rank[i]] = static_cast<u32>(i); });
  return out;
}

SuffixArray build_suffix_array_reference(std::span<const u32> s) {
  const std::size_t n = s.size();
  SuffixArray out;
  out.sa.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.sa[i] = static_cast<u32>(i);
  std::sort(out.sa.begin(), out.sa.end(), [&](u32 a, u32 b) {
    return std::lexicographical_compare(s.begin() + a, s.end(), s.begin() + b, s.end());
  });
  out.rank.assign(n, 0);
  for (std::size_t r = 0; r < n; ++r) out.rank[out.sa[r]] = static_cast<u32>(r);
  pram::charge(n);
  return out;
}

std::vector<u32> lcp_kasai(std::span<const u32> s, const SuffixArray& sa) {
  const std::size_t n = s.size();
  std::vector<u32> lcp(n, 0);
  if (n == 0) return lcp;
  if (sa.sa.size() != n || sa.rank.size() != n) {
    throw std::invalid_argument("lcp_kasai: suffix array size mismatch");
  }
  u32 h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u32 r = sa.rank[i];
    if (r == 0) {
      h = 0;
      continue;
    }
    const std::size_t j = sa.sa[r - 1];
    if (h > 0) --h;
    while (i + h < n && j + h < n && s[i + h] == s[j + h]) ++h;
    lcp[r] = h;
  }
  pram::charge(2 * n);
  return lcp;
}

u32 msp_suffix_array(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n == 0) return 0;
  if (n == 1) return 0;

  // Reduce a repeating string to its smallest repeating prefix: the m.s.p.
  // of the prefix is an m.s.p. of the whole string (Section 3.1).
  const u32 p = smallest_period_seq(s);
  if (p < n) return msp_suffix_array(s.subspan(0, p));

  // Non-repeating: rotations are pairwise distinct, so any two rotations
  // differ within their first n characters.  Suffix i < n of the doubled
  // string s·s has length >= n, hence the suffix order restricted to
  // starts in [0, n) equals the rotation order.
  std::vector<u32> doubled(2 * n);
  pram::parallel_for(0, 2 * n, [&](std::size_t i) { doubled[i] = s[i % n]; });
  const SuffixArray sa = build_suffix_array(doubled);
  u32 best = kNone;
  for (std::size_t r = 0; r < 2 * n; ++r) {
    if (sa.sa[r] < n) {
      best = sa.sa[r];
      break;
    }
  }
  pram::charge(2 * n);
  return best;
}

int compare_rotations(std::span<const u32> s, u32 i, u32 j) {
  const std::size_t n = s.size();
  if (i == j) return 0;
  for (std::size_t t = 0; t < n; ++t) {
    const u32 a = s[(i + t) % n];
    const u32 b = s[(j + t) % n];
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

u64 count_distinct_substrings(std::span<const u32> s) {
  const std::size_t n = s.size();
  if (n == 0) return 0;
  const SuffixArray sa = build_suffix_array(s);
  const std::vector<u32> lcp = lcp_kasai(s, sa);
  u64 total = static_cast<u64>(n) * (n + 1) / 2;
  for (const u32 v : lcp) total -= v;
  return total;
}

}  // namespace sfcp::strings
