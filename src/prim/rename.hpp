#pragma once
// Label renaming — mapping tuples of labels to fresh single labels.  This is
// the recurring move of the paper:
//
// * `rename_sorted` (order-preserving, dense ranks): sort the packed pairs,
//   rank by adjacent-difference + prefix sum, scatter back.  Used where
//   lexicographic ORDER must survive the renaming (m.s.p. step 3, string
//   sorting step 3).  This is where integer sorting — and hence the
//   O(n log log n) term — enters.
// * `rename_hashed` (equality-preserving only, arbitrary labels in [0, n)):
//   the arbitrary-CRCW BB-table trick of Algorithm partition.  O(n) work,
//   labels are winner positions; order is NOT preserved.

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::prim {

struct RenameResult {
  std::vector<u32> labels;  ///< per-element new label
  u32 num_classes = 0;      ///< number of distinct inputs (dense modes only)
};

/// Order-preserving dense renaming of 64-bit keys: equal keys get equal
/// labels, labels are 0..num_classes-1 in key order.
RenameResult rename_sorted(std::span<const u64> keys, u64 max_key = 0);

/// Order-preserving dense renaming of pairs (a[i], b[i]).
RenameResult rename_pairs_sorted(std::span<const u32> a, std::span<const u32> b);

/// Equality-preserving renaming via concurrent hashing (BB-table emulation):
/// equal keys get equal labels; labels are arbitrary values in [0, keys.size())
/// (the winning element's index).  num_classes is not computed (set to 0).
RenameResult rename_hashed(std::span<const u64> keys);

/// Equality-preserving renaming of pairs via hashing.
RenameResult rename_pairs_hashed(std::span<const u32> a, std::span<const u32> b);

/// Canonicalizes labels to first-occurrence order: out[i] in [0, k), equal
/// iff in[i] equal, and the first occurrences are numbered 0,1,2,...
/// Sequential O(n) with a hash map; used to compare partitions for equality.
RenameResult canonicalize_labels(std::span<const u32> labels);

}  // namespace sfcp::prim
