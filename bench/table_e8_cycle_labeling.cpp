// E8 — Lemma 3.2: cycle-node labelling on pure-cycle inputs (the §3 core),
// sweeping the period structure: many short cycles vs few long ones, and
// highly-repetitive vs primitive B-label strings.
#include <iostream>

#include "core/coarsest_partition.hpp"
#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "util/bench_json.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E8 (Lemma 3.2): cycle node labelling (pure-cycle graphs)\n\n";
  util::Table table({"n", "workload", "blocks", "classes", "ops", "ops/n", "ms"});
  util::Rng rng(8);

  const auto run = [&](const char* workload, const graph::Instance& inst) {
    pram::Metrics m;
    util::Timer timer;
    core::Result r;
    {
      pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
      r = core::solve(inst);
    }
    const double ms = timer.millis();
    table.add_row(inst.size(), workload, r.num_blocks, r.num_cycles, m.ops(),
                  static_cast<double>(m.ops()) / static_cast<double>(inst.size()), ms);
    json.record("e8_cycle_labeling", inst.size(), workload, pram::threads(), ms);
  };

  for (int e = 16; e <= 20; e += 2) {
    const std::size_t n = std::size_t{1} << e;
    // k x l grid at fixed n: many short cycles ... few long cycles.
    run("4096 cycles x n/4096", util::equal_cycles(4096, n / 4096, 8, 4, rng));
    run("64 cycles x n/64", util::equal_cycles(64, n / 64, 8, 4, rng));
    run("4 cycles x n/4", util::equal_cycles(4, n / 4, 2, 4, rng));
    // Periodic B-labels: huge equivalence classes, heavy period reduction.
    run("permutation periodic-B", util::random_permutation(n, 3, rng));
    // Mergeable: labels follow orbit structure, most nodes collapse.
    run("mergeable", util::mergeable(n, 16, rng));
  }
  table.print();
  std::cout << "\n(ops/n stays O(log log n)-flat across cycle counts and periods —\n"
            << " Lemma 3.2's bound; the integer sort inside m.s.p./renaming is the\n"
            << " only super-linear contributor, visible in the sort_ops share.)\n";
  return 0;
}
