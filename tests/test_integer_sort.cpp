// Unit tests for the stable LSD radix sort (the Bhatt et al. [4] stand-in).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pram/config.hpp"
#include "prim/integer_sort.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(IntegerSort, Empty) {
  std::vector<u64> keys;
  EXPECT_TRUE(prim::sort_order_by_key(keys).empty());
}

TEST(IntegerSort, Single) {
  std::vector<u64> keys{42};
  EXPECT_EQ(prim::sort_order_by_key(keys), (std::vector<u32>{0}));
}

TEST(IntegerSort, SmallKnown) {
  std::vector<u64> keys{3, 1, 2, 1};
  const auto order = prim::sort_order_by_key(keys);
  EXPECT_EQ(order, (std::vector<u32>{1, 3, 2, 0}));  // stable: 1@1 before 1@3
}

TEST(IntegerSort, StabilityOnEqualKeys) {
  std::vector<u64> keys(1000, 7);
  const auto order = prim::sort_order_by_key(keys);
  std::vector<u32> expected(1000);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(IntegerSort, RadixPasses) {
  EXPECT_EQ(prim::radix_passes(0), 1);
  EXPECT_EQ(prim::radix_passes(255), 1);
  EXPECT_EQ(prim::radix_passes(256), 2);
  EXPECT_EQ(prim::radix_passes(~0ull), 8);
}

TEST(IntegerSort, InPlaceWithValues) {
  std::vector<u64> keys{5, 2, 9, 2};
  std::vector<u32> vals{0, 1, 2, 3};
  prim::radix_sort(keys, &vals);
  EXPECT_EQ(keys, (std::vector<u64>{2, 2, 5, 9}));
  EXPECT_EQ(vals, (std::vector<u32>{1, 3, 0, 2}));
}

TEST(IntegerSort, LargeKeysFullWidth) {
  util::Rng rng(17);
  std::vector<u64> keys(20000);
  for (auto& k : keys) k = rng.next();
  std::vector<u64> ref = keys;
  std::sort(ref.begin(), ref.end());
  prim::radix_sort(keys);
  EXPECT_EQ(keys, ref);
}

class IntegerSortSweep : public ::testing::TestWithParam<std::tuple<std::size_t, u64>> {};

TEST_P(IntegerSortSweep, MatchesStdStableSort) {
  const auto [n, key_bound] = GetParam();
  util::Rng rng(n ^ key_bound);
  std::vector<u64> keys(n);
  for (auto& k : keys) k = rng.below(key_bound);
  std::vector<u32> ref(n);
  std::iota(ref.begin(), ref.end(), 0u);
  std::stable_sort(ref.begin(), ref.end(), [&](u32 a, u32 b) { return keys[a] < keys[b]; });
  for (const std::size_t grain : {64u, 1u << 22}) {
    pram::ScopedGrain g(grain);
    EXPECT_EQ(prim::sort_order_by_key(keys), ref) << "n=" << n << " bound=" << key_bound;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntegerSortSweep,
    ::testing::Combine(::testing::Values(1, 2, 100, 4096, 50000),
                       ::testing::Values(u64{2}, u64{16}, u64{1} << 8, u64{1} << 16,
                                         u64{1} << 32)));

}  // namespace
}  // namespace sfcp
