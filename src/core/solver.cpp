#include "core/solver.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

#include <omp.h>

#include "pram/config.hpp"
#include "pram/worker_pool.hpp"

namespace sfcp::core {

Result Solver::solve(const graph::Instance& inst) {
  pram::ScopedContext guard(&ctx_);
  return core::solve(inst, opt_, ws_);
}

PartitionView Solver::solve_view(const graph::Instance& inst, u64 epoch) {
  return solve(inst).view(epoch);
}

std::vector<Solver::BatchEntry> Solver::solve_batch(std::span<const graph::Instance> instances) {
  std::vector<BatchEntry> out(instances.size());
  std::vector<pram::MetricsSnapshot> metrics =
      solve_batch(instances, [&out](std::size_t i, Result&& r, const SolveWorkspace&) {
        out[i].result = std::move(r);
      });
  for (std::size_t i = 0; i < out.size(); ++i) out[i].metrics = metrics[i];
  return out;
}

std::vector<pram::MetricsSnapshot> Solver::solve_batch(
    std::span<const graph::Instance> instances, const BatchConsumer& consume) {
  const std::size_t m = instances.size();
  if (m == 0) return {};

  // Validate everything up front so a malformed instance throws before any
  // solving starts (and from the calling thread, not an OpenMP worker).
  // Charged to no sink: each instance's own validation inside solve() is
  // what its per-instance metrics report.
  {
    pram::ExecutionContext preflight = ctx_;
    preflight.metrics = nullptr;
    pram::ScopedContext guard(preflight);
    for (const auto& inst : instances) graph::validate(inst);
  }

  // With a session worker pool installed, fan the instances over its
  // persistent workers instead of forking a nested OpenMP team: each
  // instance solves serially on its lane (fleet floods have m >> width, so
  // outer parallelism is all that matters) with per-instance metrics/seed,
  // matching the OpenMP path's semantics including per-instance error
  // capture.  Lanes own their workspaces, amortized across the batch.
  if (pram::WorkerPool* pool = ctx_.pool;
      pool != nullptr && m > 1 && !pram::WorkerPool::on_worker()) {
    std::vector<pram::Metrics> sinks(m);
    std::vector<SolveWorkspace> workspaces(static_cast<std::size_t>(pool->width()));
    std::exception_ptr error;
    std::mutex error_mu;
    pool->fan(m, [&](std::size_t i) {
      // Per-instance catch, exactly like the OpenMP path: one bad instance
      // must not stop this lane from claiming the rest of the batch.
      try {
        pram::ExecutionContext local = ctx_;
        local.threads = 1;
        local.pool = nullptr;  // inner rounds stay on this lane
        local.metrics = &sinks[i];
        local.seed = ctx_.seed + static_cast<u64>(i);
        pram::ScopedContext guard(&local);
        // Caller lane is width()-1, workers are 0..width()-2.
        const int lane = pram::WorkerPool::lane();
        SolveWorkspace& ws =
            workspaces[static_cast<std::size_t>(lane >= 0 ? lane : pool->width() - 1)];
        Result r = core::solve(instances[i], opt_, ws);
        consume(i, std::move(r), ws);
      } catch (...) {
        const std::lock_guard<std::mutex> lk(error_mu);
        if (!error) error = std::current_exception();
      }
    });
    if (error) std::rethrow_exception(error);
    std::vector<pram::MetricsSnapshot> out(m);
    for (std::size_t i = 0; i < m; ++i) out[i] = sinks[i].snapshot();
    return out;
  }

  // Split the thread budget: outer workers across instances, the remainder
  // inside each solve.  With more instances than threads each solve runs
  // sequentially — the server-batch sweet spot.
  int total = ctx_.threads;
  if (total <= 0) {
    pram::ScopedContext off(nullptr);  // read the process-wide default
    total = pram::threads();
  }
  const int outer = std::max(1, static_cast<int>(std::min<std::size_t>(
                                    static_cast<std::size_t>(total), m)));
  const int inner = std::max(1, total / outer);
  // The inner budget only takes effect if OpenMP allows a second level of
  // parallel regions (the default max-active-levels is 1, which would
  // silently serialize every solve inside the outer team).  The setting is
  // process-global, so restore it after the batch rather than leaking
  // nested-parallelism mode into unrelated caller code.
  const int saved_levels = omp_get_max_active_levels();
  const bool bump_levels = inner > 1 && saved_levels < 2;
  if (bump_levels) omp_set_max_active_levels(2);

  std::vector<pram::Metrics> sinks(m);
  std::vector<SolveWorkspace> workspaces(static_cast<std::size_t>(outer));
  std::exception_ptr error;

#pragma omp parallel for num_threads(outer) schedule(dynamic, 1)
  for (i64 i = 0; i < static_cast<i64>(m); ++i) {
    try {
      pram::ExecutionContext local = ctx_;
      local.threads = inner;
      local.metrics = &sinks[static_cast<std::size_t>(i)];
      local.seed = ctx_.seed + static_cast<u64>(i);
      pram::ScopedContext guard(&local);
      SolveWorkspace& ws = workspaces[static_cast<std::size_t>(omp_get_thread_num())];
      Result r = core::solve(instances[static_cast<std::size_t>(i)], opt_, ws);
      // The consumer runs before this worker's workspace is overwritten by
      // its next instance — the only window in which ws describes r.
      consume(static_cast<std::size_t>(i), std::move(r), ws);
    } catch (...) {
#pragma omp critical(sfcp_solver_batch_error)
      if (!error) error = std::current_exception();
    }
  }
  if (bump_levels) omp_set_max_active_levels(saved_levels);
  if (error) std::rethrow_exception(error);

  std::vector<pram::MetricsSnapshot> out(m);
  for (std::size_t i = 0; i < m; ++i) out[i] = sinks[i].snapshot();
  return out;
}

}  // namespace sfcp::core
