#pragma once
// Common scalar types used throughout the library.
//
// Indices, node ids, B-labels and Q-labels all live in [0, n) with
// n < 2^32 - 2, so everything is a u32; pairs of labels pack into a single
// u64 radix-sort key, which is what makes the paper's "integer sorting over
// [1..n^{O(1)}]" cheap to realize.

#include <cstdint>
#include <limits>

namespace sfcp {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Sentinel for "no index / empty cell" (matches pram::kEmptyCell<u32>).
inline constexpr u32 kNone = std::numeric_limits<u32>::max();

/// Packs a pair of 32-bit labels into one sortable 64-bit key
/// (lexicographic order of the pair == numeric order of the key).
inline constexpr u64 pack_pair(u32 hi, u32 lo) noexcept {
  return (static_cast<u64>(hi) << 32) | lo;
}

inline constexpr u32 pair_hi(u64 key) noexcept { return static_cast<u32>(key >> 32); }
inline constexpr u32 pair_lo(u64 key) noexcept { return static_cast<u32>(key); }

}  // namespace sfcp
