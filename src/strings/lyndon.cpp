#include "strings/lyndon.hpp"

#include <algorithm>

#include "pram/metrics.hpp"

namespace sfcp::strings {

std::vector<u32> lyndon_factorization(std::span<const u32> s) {
  const std::size_t n = s.size();
  std::vector<u32> starts;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1, k = i;
    while (j < n && s[k] <= s[j]) {
      k = (s[k] < s[j]) ? i : k + 1;
      ++j;
    }
    // The scan found factors of equal length j - k repeated until position k;
    // each repetition is its own Lyndon factor.
    while (i <= k) {
      starts.push_back(static_cast<u32>(i));
      i += j - k;
    }
  }
  pram::charge(2 * n);
  return starts;
}

bool is_lyndon(std::span<const u32> s) {
  if (s.empty()) return false;
  const auto f = lyndon_factorization(s);
  return f.size() == 1;
}

std::vector<u32> z_function(std::span<const u32> s) {
  const std::size_t n = s.size();
  std::vector<u32> z(n, 0);
  if (n == 0) return z;
  z[0] = static_cast<u32>(n);
  std::size_t l = 0, r = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (i < r) z[i] = static_cast<u32>(std::min(r - i, static_cast<std::size_t>(z[i - l])));
    while (i + z[i] < n && s[z[i]] == s[i + z[i]]) ++z[i];
    if (i + z[i] > r) {
      l = i;
      r = i + z[i];
    }
  }
  pram::charge(2 * n);
  return z;
}

std::vector<u32> borders(std::span<const u32> s) {
  const std::size_t n = s.size();
  std::vector<u32> fail(n + 1, 0);
  u32 k = 0;
  for (std::size_t i = 1; i < n; ++i) {
    while (k > 0 && s[i] != s[k]) k = fail[k];
    if (s[i] == s[k]) ++k;
    fail[i + 1] = k;
  }
  std::vector<u32> out;
  u32 b = n > 0 ? fail[n] : 0;
  while (b > 0) {
    out.push_back(b);
    b = fail[b];
  }
  std::reverse(out.begin(), out.end());
  pram::charge(2 * n);
  return out;
}

}  // namespace sfcp::strings
