#pragma once
// Graphviz (DOT) export of functional graphs and solved instances — the
// debugging companion for everything in this library: render the
// pseudo-forest, color nodes by B-label and group them by Q-block, exactly
// like the paper's Fig. 1 (which is the first thing anyone draws when
// studying an instance).

#include <iosfwd>
#include <span>
#include <string>

#include "graph/functional_graph.hpp"
#include "pram/types.hpp"

namespace sfcp::util {

struct DotOptions {
  bool show_b_labels = true;     ///< annotate nodes with their B-label
  bool cluster_by_q = false;     ///< group nodes into Q-block clusters
  std::string graph_name = "sfcp";
};

/// Writes the functional graph of `inst` in DOT format.  When
/// `opts.cluster_by_q` is set, `q` must be a valid labelling of the same
/// size (e.g. core::solve(inst).q); otherwise `q` may be empty.
void write_dot(std::ostream& os, const graph::Instance& inst, std::span<const u32> q,
               const DotOptions& opts = {});

/// Convenience: DOT text as a string.
std::string to_dot(const graph::Instance& inst, std::span<const u32> q = {},
                   const DotOptions& opts = {});

}  // namespace sfcp::util
