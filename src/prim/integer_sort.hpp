#pragma once
// Stable parallel integer sorting over [0, n^{O(1)}).
//
// The paper uses the deterministic parallel integer sort of Bhatt et al. [4]
// as a black box; it is the single source of the O(n log log n) term in
// Theorem 5.1.  We realize the same interface with a stable LSD radix sort:
// per-block counting, a column-major prefix sum over (digit, block) counts,
// and a stable scatter — linear work per digit pass.

#include <cstddef>
#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::prim {

/// Stable sort permutation by 64-bit key: returns `order` such that
/// keys[order[0]] <= keys[order[1]] <= ... and equal keys keep their input
/// order.  `max_key` bounds the key values (pass 0 to have it computed).
std::vector<u32> sort_order_by_key(std::span<const u64> keys, u64 max_key = 0);

/// Sorts `keys` in place (values permuted alongside if non-empty).
void radix_sort(std::vector<u64>& keys, std::vector<u32>* values = nullptr, u64 max_key = 0);

/// Number of 8-bit digit passes needed for keys bounded by max_key.
int radix_passes(u64 max_key) noexcept;

}  // namespace sfcp::prim
