#pragma once
// Smallest repeating prefix (smallest period that divides the length).
//
// Section 3 reduces every cycle's B-label string to its smallest repeating
// prefix P (P^j = S).  The paper cites the optimal parallel string matching
// machinery of [6, 20]; we provide
//   * `smallest_period_seq`     — KMP failure function, O(n) sequential
//   * `smallest_period_parallel`— doubling-rank table + O(1) substring
//                                 equality per divisor, O(n log n) work /
//                                 O(log n) depth (documented substitution)

#include <span>
#include <vector>

#include "pram/types.hpp"

namespace sfcp::strings {

/// Smallest p such that p divides s.size() and s = (s[0..p))^{n/p}.
/// Returns s.size() for a non-repeating string; 0 only for empty input.
u32 smallest_period_seq(std::span<const u32> s);

/// Parallel variant (same contract).
u32 smallest_period_parallel(std::span<const u32> s);

/// True iff s consists of >= 2 repetitions of a shorter string.
bool is_repeating(std::span<const u32> s);

/// Doubling-rank table supporting O(1) equality tests between arbitrary
/// equal-length substrings (suffix-array style, out-of-range = sentinel).
class RankTable {
 public:
  explicit RankTable(std::span<const u32> s);

  /// True iff s[i..i+len) == s[j..j+len) (both ranges must fit).
  bool equal(u32 i, u32 j, u32 len) const;

  /// Rank of suffix prefixes of length 2^level starting at i.
  u32 rank(int level, u32 i) const { return levels_[static_cast<std::size_t>(level)][i]; }

  int num_levels() const { return static_cast<int>(levels_.size()); }

 private:
  std::size_t n_ = 0;
  std::vector<std::vector<u32>> levels_;
};

}  // namespace sfcp::strings
