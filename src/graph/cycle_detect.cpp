#include "graph/cycle_detect.hpp"

#include <bit>
#include <cassert>

#include "graph/functional_graph.hpp"
#include "pram/parallel_for.hpp"
#include "prim/integer_sort.hpp"
#include "prim/scan.hpp"

namespace sfcp::graph {

namespace {

void detect_sequential(std::span<const u32> f, std::vector<u8>& on_cycle) {
  const std::size_t n = f.size();
  on_cycle.assign(n, 0);
  std::vector<u8> color(n, 0);  // 0 unvisited, 1 on walk, 2 done
  std::vector<u32> path;
  for (u32 start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    path.clear();
    u32 v = start;
    while (color[v] == 0) {
      color[v] = 1;
      path.push_back(v);
      v = f[v];
    }
    if (color[v] == 1) {
      std::size_t pos = path.size();
      while (pos > 0 && path[pos - 1] != v) --pos;
      for (std::size_t i = pos - 1; i < path.size(); ++i) on_cycle[path[i]] = 1;
    }
    for (const u32 x : path) color[x] = 2;
  }
  pram::charge(2 * n);
}

void detect_powers(std::span<const u32> f, std::vector<u8>& on_cycle) {
  const std::size_t n = f.size();
  on_cycle.assign(n, 0);
  if (n == 0) return;
  const std::vector<u32> fn = iterate_function(f, std::bit_ceil(static_cast<u64>(n)));
  pram::parallel_for(0, n, [&](std::size_t x) { on_cycle[fn[x]] = 1; });
}

// Paper §5: Euler partition of the doubled pseudo-forest.
// Arc 2x = (x -> f(x)); arc 2x+1 = its buddy (f(x) -> x).
void detect_euler(std::span<const u32> f, std::vector<u8>& on_cycle) {
  const std::size_t n = f.size();
  on_cycle.assign(n, 0);
  if (n == 0) return;
  // Preimage lists pre[v] (CSR) and each node's index within its parent's
  // preimage list, built with one stable integer sort (paper: "the data
  // structure ... can easily be done by using an integer sorting
  // algorithm").
  std::vector<u64> keys(n);
  pram::parallel_for(0, n, [&](std::size_t x) { keys[x] = f[x]; });
  const std::vector<u32> by_parent = prim::sort_order_by_key(keys, n - 1);
  std::vector<u32> pre(n);  // nodes grouped by f-image
  pram::parallel_for(0, n, [&](std::size_t i) { pre[i] = by_parent[i]; });
  const std::vector<u32> deg = indegrees(f);
  std::vector<u32> pre_off(n + 1, 0);
  prim::exclusive_scan<u32>(deg, std::span<u32>(pre_off).first(n));
  pre_off[n] = static_cast<u32>(n);
  std::vector<u32> pre_index(n);  // position of x within pre[f(x)]
  pram::parallel_for(0, n, [&](std::size_t i) {
    pre_index[pre[i]] = static_cast<u32>(i) - pre_off[f[pre[i]]];
  });
  // Out-arc list of v (circular): slot 0 = down-arc 2v, slot 1+j = buddy
  // arc of pre[v][j].  The Euler successor of arc e=(u,v) is the out-arc of
  // v following twin(e) in this circular order.
  auto out_arc = [&](u32 v, u32 slot) -> u32 {
    return slot == 0 ? 2 * v : 2 * pre[pre_off[v] + (slot - 1)] + 1;
  };
  std::vector<u32> succ(2 * n);
  pram::parallel_for(0, n, [&](std::size_t xi) {
    const u32 x = static_cast<u32>(xi);
    // succ of the down-arc 2x: head is v = f(x); twin is buddy 2x+1 at slot
    // 1 + pre_index[x] of v's list.
    const u32 v = f[x];
    const u32 dv = deg[v] + 1;  // circular list size of v
    succ[2 * x] = out_arc(v, (1 + pre_index[x] + 1) % dv);
    // succ of the buddy 2x+1: head is x; twin is the down-arc 2x at slot 0.
    const u32 dx = deg[x] + 1;
    succ[2 * x + 1] = out_arc(x, 1 % dx);
  });
  // Euler-cycle identifiers: minimum arc id in each orbit of the successor
  // permutation, by min-propagation doubling.
  const std::size_t m = 2 * n;
  std::vector<u32> id(m), jump(m), id2(m), jump2(m);
  pram::parallel_for(0, m, [&](std::size_t a) {
    id[a] = static_cast<u32>(a);
    jump[a] = succ[a];
  });
  const int rounds = static_cast<int>(std::bit_width(static_cast<u64>(m - 1))) + 1;
  for (int r = 0; r < rounds; ++r) {
    pram::parallel_for(0, m, [&](std::size_t a) {
      id2[a] = std::min(id[a], id[jump[a]]);
      jump2[a] = jump[jump[a]];
    });
    id.swap(id2);
    jump.swap(jump2);
  }
  // Edge (x, f(x)) is a cycle edge iff its two arcs lie in different Euler
  // cycles; both endpoints of a cycle edge are cycle nodes, and every cycle
  // node has exactly one outgoing cycle edge.
  pram::parallel_for(0, n, [&](std::size_t x) {
    if (id[2 * x] != id[2 * x + 1]) on_cycle[x] = 1;
  });
}

}  // namespace

std::vector<u8> find_cycle_nodes(std::span<const u32> f, CycleDetectStrategy strategy) {
  std::vector<u8> on_cycle;
  find_cycle_nodes_into(f, strategy, on_cycle);
  return on_cycle;
}

void find_cycle_nodes_into(std::span<const u32> f, CycleDetectStrategy strategy,
                           std::vector<u8>& on_cycle) {
  switch (strategy) {
    case CycleDetectStrategy::Sequential:
      return detect_sequential(f, on_cycle);
    case CycleDetectStrategy::FunctionPowers:
      return detect_powers(f, on_cycle);
    case CycleDetectStrategy::EulerTour:
      return detect_euler(f, on_cycle);
  }
  return detect_sequential(f, on_cycle);
}

}  // namespace sfcp::graph
