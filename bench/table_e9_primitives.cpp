// E9 — substrate claims: prefix sums, integer sorting [4], list ranking [2]
// and find-first [9].  One table of ops/n and throughput per primitive so
// the per-lemma tables can be read against their building blocks.
#include <iostream>
#include <numeric>

#include "pram/config.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"
#include "prim/find_first.hpp"
#include "prim/integer_sort.hpp"
#include "prim/list_ranking.hpp"
#include "prim/merge.hpp"
#include "prim/scan.hpp"
#include "util/bench_json.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  util::BenchJson json(argc, argv);
  std::cout << "E9: parallel primitive substrate\n\n";
  util::Table table({"n", "primitive", "ops", "ops/n", "ms", "M items/s"});
  util::Rng rng(9);

  const auto row = [&](std::size_t n, const char* name, auto&& body) {
    pram::Metrics m;
    util::Timer timer;
    {
      pram::ScopedContext guard(pram::ExecutionContext{}.with_metrics(&m));
      body();
    }
    const double ms = timer.millis();
    table.add_row(n, name, m.ops(), static_cast<double>(m.ops()) / static_cast<double>(n), ms,
                  static_cast<double>(n) / 1e3 / (ms > 0 ? ms : 1e-3));
    json.record("e9_primitives", n, name, pram::threads(), ms);
  };

  for (int e = 16; e <= 22; e += 3) {
    const std::size_t n = std::size_t{1} << e;

    std::vector<u32> data(n);
    for (auto& x : data) x = rng.below(1u << 30);
    std::vector<u32> out(n);
    row(n, "exclusive scan", [&] { prim::exclusive_scan<u32>(data, out); });

    std::vector<u64> keys(n);
    for (auto& k : keys) k = rng.below(1u << 30);
    row(n, "radix sort u64", [&] {
      auto copy = keys;
      prim::radix_sort(copy);
    });
    row(n, "merge sort u64", [&] {
      auto copy = keys;
      prim::parallel_merge_sort(std::span<u64>(copy));
    });

    // One long list for ranking.
    std::vector<u32> next(n);
    for (std::size_t i = 0; i + 1 < n; ++i) next[i] = static_cast<u32>(i + 1);
    next[n - 1] = kNone;
    row(n, "list rank (jump)", [&] {
      prim::list_rank(next, prim::ListRankStrategy::PointerJumping);
    });
    row(n, "list rank (ruling)", [&] {
      prim::list_rank(next, prim::ListRankStrategy::RulingSet);
    });

    std::vector<u8> flags(n, 0);
    flags[n / 2] = 1;
    row(n, "find first", [&] { prim::find_first_set(flags); });
  }
  table.print();
  std::cout << "\n(scan / ruling-set ranking / find-first are O(n) work; pointer\n"
            << " jumping pays lg n; radix sort is the O(n log log n) surrogate [4]\n"
            << " and merge sort the O(n log n) comparison reference.)\n";
  return 0;
}
