#pragma once
// Work/depth accounting: the reproduction's stand-in for the paper's
// "operations" measure.
//
// Every algorithm in the library charges its work to the currently installed
// Metrics sink (if any).  Charging happens in bulk (once per parallel loop,
// not once per element) so instrumentation does not distort wall-clock
// measurements.  `rounds` counts synchronous PRAM rounds (parallel-loop
// barriers), the analogue of parallel time.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sfcp::pram {

/// Online EWMA fit of the two sides of an incremental-vs-full crossover
/// (repair-vs-rebuild for inc::RepairPolicy, migrate-vs-reshard for
/// shard::ReshardPolicy).  The engines feed it one observation per repair
/// delta — cost of the incremental path per dirty unit, or cost of one
/// full rebuild — and adaptive policies read the fitted crossover back as
/// their dirty budget.  Costs are wall-clock nanoseconds (what a serving
/// loop actually pays); the totals are also charged to the Metrics sink so
/// sessions can audit the fit.
struct CostModel {
  double unit_cost = 0.0;  ///< EWMA cost per dirty unit on the incremental path
  double full_cost = 0.0;  ///< EWMA cost of one full rebuild
  std::uint64_t unit_samples = 0;
  std::uint64_t full_samples = 0;

  void observe_unit(double cost, std::uint64_t units, double alpha) noexcept {
    if (units == 0) return;
    const double per = cost / static_cast<double>(units);
    unit_cost = unit_samples == 0 ? per : alpha * per + (1.0 - alpha) * unit_cost;
    ++unit_samples;
  }
  void observe_full(double cost, double alpha) noexcept {
    full_cost = full_samples == 0 ? cost : alpha * cost + (1.0 - alpha) * full_cost;
    ++full_samples;
  }

  /// Enough evidence on both sides to trust crossover().  A handful of
  /// incremental samples smooths scheduler noise; one full rebuild (e.g.
  /// the engine's construction solve) anchors the other side.
  bool fitted() const noexcept {
    return unit_samples >= 8 && full_samples >= 1 && unit_cost > 0.0;
  }

  /// Estimated dirty-unit count at which the incremental path costs as much
  /// as one full rebuild (0 when unfitted).
  double crossover() const noexcept {
    return unit_cost > 0.0 ? full_cost / unit_cost : 0.0;
  }

  /// The fitted crossover as a policy budget: clamped to [min_absolute, n],
  /// `fallback` while the fit has not converged.  The one conversion both
  /// adaptive policies (inc::RepairPolicy, shard::ReshardPolicy) share.
  std::size_t budget(std::size_t n, std::size_t min_absolute,
                     std::size_t fallback) const noexcept {
    if (!fitted()) return fallback;
    const double cross = crossover();
    std::size_t cap = n;  // a crossover at or beyond n can never be exceeded
    if (cross < static_cast<double>(n)) {
      cap = cross > 0.0 ? static_cast<std::size_t>(cross) : std::size_t{0};
    }
    if (cap < min_absolute) cap = min_absolute;
    return cap < n ? cap : n;
  }
};

/// Plain-value copy of a Metrics sink (atomics relaxed-loaded once); the
/// form batched results hand back per instance.
struct MetricsSnapshot {
  std::uint64_t operations = 0;
  std::uint64_t rounds = 0;
  std::uint64_t sort_ops = 0;
  std::uint64_t crcw_writes = 0;
  std::uint64_t edit_repairs = 0;
  std::uint64_t edit_rebuilds = 0;
  std::uint64_t edit_dirty = 0;
  std::uint64_t edit_repair_ns = 0;
  std::uint64_t edit_rebuild_ns = 0;
  std::uint64_t view_patched = 0;
  std::uint64_t view_rebuilt = 0;
};

/// Aggregate work/depth counters for one measured region.
struct Metrics {
  std::atomic<std::uint64_t> operations{0};  ///< total work (PRAM operations)
  std::atomic<std::uint64_t> rounds{0};      ///< synchronous parallel rounds
  std::atomic<std::uint64_t> sort_ops{0};    ///< work spent inside integer sorting
  std::atomic<std::uint64_t> crcw_writes{0}; ///< arbitrary-CRCW winner writes
  // Edit-phase counters (the incremental engine, inc/incremental_solver):
  std::atomic<std::uint64_t> edit_repairs{0};   ///< edits served by local repair
  std::atomic<std::uint64_t> edit_rebuilds{0};  ///< edits served by full re-solve
  std::atomic<std::uint64_t> edit_dirty{0};     ///< nodes relabelled across edits
  /// Wall ns spent in repairs, estimated from 1-in-8 sampling (each sample
  /// is charged x8), so it stays comparable to the fully-timed rebuild ns.
  std::atomic<std::uint64_t> edit_repair_ns{0};
  std::atomic<std::uint64_t> edit_rebuild_ns{0};  ///< wall ns spent in rebuilds
  // View counters (core::PartitionView production):
  std::atomic<std::uint64_t> view_patched{0};  ///< nodes carried in view patch deltas
  std::atomic<std::uint64_t> view_rebuilt{0};  ///< nodes copied into fresh view roots

  void reset() noexcept {
    operations.store(0, std::memory_order_relaxed);
    rounds.store(0, std::memory_order_relaxed);
    sort_ops.store(0, std::memory_order_relaxed);
    crcw_writes.store(0, std::memory_order_relaxed);
    edit_repairs.store(0, std::memory_order_relaxed);
    edit_rebuilds.store(0, std::memory_order_relaxed);
    edit_dirty.store(0, std::memory_order_relaxed);
    edit_repair_ns.store(0, std::memory_order_relaxed);
    edit_rebuild_ns.store(0, std::memory_order_relaxed);
    view_patched.store(0, std::memory_order_relaxed);
    view_rebuilt.store(0, std::memory_order_relaxed);
  }

  /// Adds a snapshot's totals into this sink — how per-lane scratch sinks
  /// (fleet warm fan) merge into the session sink at a barrier.
  void add(const MetricsSnapshot& s) noexcept {
    operations.fetch_add(s.operations, std::memory_order_relaxed);
    rounds.fetch_add(s.rounds, std::memory_order_relaxed);
    sort_ops.fetch_add(s.sort_ops, std::memory_order_relaxed);
    crcw_writes.fetch_add(s.crcw_writes, std::memory_order_relaxed);
    edit_repairs.fetch_add(s.edit_repairs, std::memory_order_relaxed);
    edit_rebuilds.fetch_add(s.edit_rebuilds, std::memory_order_relaxed);
    edit_dirty.fetch_add(s.edit_dirty, std::memory_order_relaxed);
    edit_repair_ns.fetch_add(s.edit_repair_ns, std::memory_order_relaxed);
    edit_rebuild_ns.fetch_add(s.edit_rebuild_ns, std::memory_order_relaxed);
    view_patched.fetch_add(s.view_patched, std::memory_order_relaxed);
    view_rebuilt.fetch_add(s.view_rebuilt, std::memory_order_relaxed);
  }

  std::uint64_t ops() const noexcept { return operations.load(std::memory_order_relaxed); }
  std::uint64_t round_count() const noexcept { return rounds.load(std::memory_order_relaxed); }

  MetricsSnapshot snapshot() const noexcept {
    return MetricsSnapshot{operations.load(std::memory_order_relaxed),
                           rounds.load(std::memory_order_relaxed),
                           sort_ops.load(std::memory_order_relaxed),
                           crcw_writes.load(std::memory_order_relaxed),
                           edit_repairs.load(std::memory_order_relaxed),
                           edit_rebuilds.load(std::memory_order_relaxed),
                           edit_dirty.load(std::memory_order_relaxed),
                           edit_repair_ns.load(std::memory_order_relaxed),
                           edit_rebuild_ns.load(std::memory_order_relaxed),
                           view_patched.load(std::memory_order_relaxed),
                           view_rebuilt.load(std::memory_order_relaxed)};
  }

  std::string summary() const;
};

/// The sink charges go to: the thread-installed ExecutionContext's sink when
/// a context is active (null field = don't count), else the process-wide
/// ScopedMetrics sink; null means "don't count".
Metrics* current_metrics() noexcept;

/// Installs `m` as the process-wide default sink for the lifetime of the
/// guard (thread-shared; an active ExecutionContext takes precedence).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(Metrics& m) noexcept;
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  Metrics* saved_;
};

/// Charges `n` units of work to the current sink (no-op when none).
inline void charge(std::uint64_t n) noexcept {
  if (Metrics* m = current_metrics()) {
    m->operations.fetch_add(n, std::memory_order_relaxed);
  }
}

/// Charges one synchronous round plus `work` operations.
inline void charge_round(std::uint64_t work) noexcept {
  if (Metrics* m = current_metrics()) {
    m->rounds.fetch_add(1, std::memory_order_relaxed);
    m->operations.fetch_add(work, std::memory_order_relaxed);
  }
}

/// Charges work performed inside integer sorting (tracked separately because
/// the paper attributes its only super-linear term to sorting).
inline void charge_sort(std::uint64_t n) noexcept {
  if (Metrics* m = current_metrics()) {
    m->operations.fetch_add(n, std::memory_order_relaxed);
    m->sort_ops.fetch_add(n, std::memory_order_relaxed);
  }
}

inline void charge_crcw(std::uint64_t n) noexcept {
  if (Metrics* m = current_metrics()) {
    m->crcw_writes.fetch_add(n, std::memory_order_relaxed);
  }
}

/// Charges one edit to the current sink: `repaired` selects the repair vs.
/// rebuild counter, `dirty` is the number of nodes the edit touched, `ns`
/// the observed wall-clock cost (0 = not measured) — the raw observations
/// adaptive policies fit their CostModel from.
inline void charge_edit(bool repaired, std::uint64_t dirty, std::uint64_t ns = 0) noexcept {
  if (Metrics* m = current_metrics()) {
    (repaired ? m->edit_repairs : m->edit_rebuilds).fetch_add(1, std::memory_order_relaxed);
    m->edit_dirty.fetch_add(dirty, std::memory_order_relaxed);
    if (ns != 0) {
      (repaired ? m->edit_repair_ns : m->edit_rebuild_ns)
          .fetch_add(ns, std::memory_order_relaxed);
    }
  }
}

/// Charges one view production: `patched` selects the incremental-delta vs.
/// fresh-root counter, `nodes` is the delta size (or n for a root).  This is
/// what the O(dirty) view tests and bench_snapshot assert against.
inline void charge_view(bool patched, std::uint64_t nodes) noexcept {
  if (Metrics* m = current_metrics()) {
    (patched ? m->view_patched : m->view_rebuilt).fetch_add(nodes, std::memory_order_relaxed);
  }
}

}  // namespace sfcp::pram
