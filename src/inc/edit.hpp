#pragma once
// A single mutation of an SFCP instance: redirect one function entry or
// relabel one node's initial-partition class.  Kept dependency-free so that
// workload generators and (de)serializers can speak edits without pulling in
// the incremental engine.

#include "pram/types.hpp"

namespace sfcp::inc {

struct Edit {
  enum class Kind : u8 {
    SetF,  ///< f[node] <- value (value must be a node index)
    SetB,  ///< b[node] <- value (any u32 label)
  };

  Kind kind = Kind::SetB;
  u32 node = 0;
  u32 value = 0;

  static constexpr Edit set_f(u32 x, u32 y) noexcept { return Edit{Kind::SetF, x, y}; }
  static constexpr Edit set_b(u32 x, u32 label) noexcept { return Edit{Kind::SetB, x, label}; }

  friend bool operator==(const Edit&, const Edit&) = default;
};

}  // namespace sfcp::inc
