#include "pram/simulator.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace sfcp::pram {

std::string to_string(PramModel model) {
  switch (model) {
    case PramModel::Erew: return "EREW";
    case PramModel::Crew: return "CREW";
    case PramModel::CommonCrcw: return "common CRCW";
    case PramModel::ArbitraryCrcw: return "arbitrary CRCW";
  }
  return "?";
}

Simulator::Simulator(PramModel model, std::size_t memory_size, u32 processors)
    : model_(model), mem_(memory_size, 0), processors_(processors) {}

bool Simulator::step(const RoundFn& fn, const ReadSetFn& reads) {
  if (report_.faulted) return false;
  ++report_.rounds;

  // EREW read-conflict check (reads are unconstrained in all other models).
  if (model_ == PramModel::Erew && reads) {
    std::map<u32, u32> reader_of;
    for (u32 pid = 0; pid < processors_; ++pid) {
      for (const u32 addr : reads(pid)) {
        const auto [it, inserted] = reader_of.emplace(addr, pid);
        if (!inserted) {
          std::ostringstream os;
          os << "EREW read conflict on cell " << addr << " (processors " << it->second
             << " and " << pid << ")";
          report_.faulted = true;
          report_.fault = os.str();
          return false;
        }
      }
    }
  }

  // Gather all write requests against the round-start snapshot.
  struct Pending {
    u32 pid;
    u32 value;
  };
  std::map<u32, std::vector<Pending>> writes;  // address -> writers
  const std::span<const u32> snapshot(mem_);
  u64 active = 0;
  for (u32 pid = 0; pid < processors_; ++pid) {
    auto reqs = fn(pid, snapshot);
    if (!reqs.empty()) ++active;
    for (const auto& r : reqs) {
      if (r.address >= mem_.size()) {
        std::ostringstream os;
        os << "processor " << pid << " wrote out-of-range address " << r.address;
        report_.faulted = true;
        report_.fault = os.str();
        return false;
      }
      writes[r.address].push_back({pid, r.value});
    }
  }
  report_.operations += active;

  // Resolve conflicts per the model.
  for (auto& [addr, writers] : writes) {
    if (writers.size() > 1) {
      switch (model_) {
        case PramModel::Erew:
        case PramModel::Crew: {
          std::ostringstream os;
          os << to_string(model_) << " write conflict on cell " << addr << " ("
             << writers.size() << " writers)";
          report_.faulted = true;
          report_.fault = os.str();
          return false;
        }
        case PramModel::CommonCrcw: {
          const u32 v0 = writers.front().value;
          for (const auto& w : writers) {
            if (w.value != v0) {
              std::ostringstream os;
              os << "common-CRCW writers disagree on cell " << addr << " (" << v0 << " vs "
                 << w.value << ")";
              report_.faulted = true;
              report_.fault = os.str();
              return false;
            }
          }
          break;
        }
        case PramModel::ArbitraryCrcw:
          // Lowest pid wins — a legitimate "arbitrary" resolution.
          std::sort(writers.begin(), writers.end(),
                    [](const Pending& a, const Pending& b) { return a.pid < b.pid; });
          break;
      }
    }
    mem_[addr] = writers.front().value;
  }
  return true;
}

SimReport Simulator::run(const RoundFn& fn, const std::function<bool()>& done, u64 max_rounds,
                         const ReadSetFn& reads) {
  for (u64 r = 0; r < max_rounds; ++r) {
    if (done()) break;
    if (!step(fn, reads)) break;
  }
  return report_;
}

}  // namespace sfcp::pram
