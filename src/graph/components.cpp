#include "graph/components.hpp"

#include <atomic>

#include "pram/parallel_for.hpp"

namespace sfcp::graph {

Components connected_components(std::span<const u32> f, ForestStrategy strategy) {
  const std::size_t n = f.size();
  Components out;
  out.id.assign(n, kNone);
  if (n == 0) return out;
  const CycleStructure cs = cycle_structure(f, CycleStructureStrategy::PointerJumping);
  const RootedForest forest = build_rooted_forest(f, cs.on_cycle);
  const ForestLevels lv = forest_levels(forest, strategy);
  // Component id = dense cycle id of the owning root's cycle.
  pram::parallel_for(0, n, [&](std::size_t x) {
    out.id[x] = cs.cycle_of[lv.root_of[x]];
  });
  const std::size_t k = cs.num_cycles();
  std::vector<std::atomic<u32>> sizes(k);
  pram::parallel_for(0, k, [&](std::size_t c) { sizes[c].store(0, std::memory_order_relaxed); });
  pram::parallel_for(0, n, [&](std::size_t x) {
    sizes[out.id[x]].fetch_add(1, std::memory_order_relaxed);
  });
  out.size.resize(k);
  out.cycle_len.resize(k);
  pram::parallel_for(0, k, [&](std::size_t c) {
    out.size[c] = sizes[c].load(std::memory_order_relaxed);
    out.cycle_len[c] = cs.cycle_length(c);
  });
  return out;
}

}  // namespace sfcp::graph
