// Minimizing a unary Moore machine with redundant clock domains.
//
// Builds a machine that blinks an LED with period P using K redundant
// copies of the counter logic (as a hardware synthesizer might emit before
// optimization), minimizes it via the coarsest-partition solver, and shows
// that the quotient is the canonical P-state blinker — demonstrating the
// `core::moore` API end to end, including the isomorphism check.
//
//   $ ./moore_quotient [period] [copies]
#include <cstdlib>
#include <iostream>

#include "sfcp.hpp"

int main(int argc, char** argv) {
  using namespace sfcp;
  const u32 period = argc > 1 ? static_cast<u32>(std::strtoul(argv[1], nullptr, 10)) : 6;
  const u32 copies = argc > 2 ? static_cast<u32>(std::strtoul(argv[2], nullptr, 10)) : 50;
  if (period < 2 || copies < 1) {
    std::cerr << "usage: moore_quotient [period>=2] [copies>=1]\n";
    return 1;
  }

  // K redundant blinkers: copy c, phase p -> copy c, phase (p+1) mod P.
  // Output: LED on during the first half of each period.
  core::MooreMachine m;
  const u32 n = period * copies;
  m.next.resize(n);
  m.output.resize(n);
  for (u32 c = 0; c < copies; ++c) {
    for (u32 p = 0; p < period; ++p) {
      const u32 s = c * period + p;
      m.next[s] = c * period + (p + 1) % period;
      m.output[s] = p < period / 2 ? 1 : 0;
    }
  }
  std::cout << "Unoptimized machine: " << n << " states (" << copies << " copies of a " << period
            << "-phase blinker)\n";

  const auto min = core::minimize(m);
  std::cout << "Minimized machine:   " << min.machine.size() << " states\n";

  // The canonical blinker for comparison.
  core::MooreMachine canon;
  canon.next.resize(period);
  canon.output.resize(period);
  for (u32 p = 0; p < period; ++p) {
    canon.next[p] = (p + 1) % period;
    canon.output[p] = p < period / 2 ? 1 : 0;
  }

  const bool iso = core::isomorphic(min.machine, canon);
  std::cout << "Quotient isomorphic to the canonical " << period << "-state blinker: "
            << (iso ? "yes" : "NO") << "\n";

  const bool behave = core::quotient_preserves_behaviour(m, min, 4 * period);
  std::cout << "Behaviour preserved over 4 periods: " << (behave ? "yes" : "NO") << "\n";

  // Show the LED waveform once.
  std::cout << "\nWaveform (one period from phase 0): ";
  for (const u32 v : min.machine.stream(min.state_map[0], period)) std::cout << (v ? '#' : '.');
  std::cout << "\n";

  // Note: states in DIFFERENT phases are inequivalent even though they have
  // equal outputs at some instants — the stream, not the instant, decides.
  std::cout << "Phase 0 ~ phase " << period / 2 << "? "
            << (core::states_equivalent(m, 0, period / 2) ? "yes" : "no (different futures)")
            << "\n";
  return iso && behave ? 0 : 1;
}
