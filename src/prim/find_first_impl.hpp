#pragma once
// Implementation of the templated find_first_if (kept out of the main
// header for readability).

#include <atomic>

#include "pram/config.hpp"
#include "pram/metrics.hpp"
#include "pram/parallel_for.hpp"

namespace sfcp::prim {

template <typename Pred>
u32 find_first_if(std::size_t lo, std::size_t hi, Pred&& pred) {
  if (hi <= lo) return kNone;
  const std::size_t n = hi - lo;
  const int nb = pram::num_blocks(n);
  if (nb == 1) {
    pram::charge_round(n);
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(i)) return static_cast<u32>(i);
    }
    return kNone;
  }
  std::atomic<u32> best{kNone};
  pram::parallel_blocks(n, [&](int, std::size_t blo, std::size_t bhi) {
    // Early exit once some earlier block already found a hit before blo.
    if (best.load(std::memory_order_relaxed) <= blo + lo) return;
    for (std::size_t i = blo; i < bhi; ++i) {
      if (pred(i + lo)) {
        u32 cand = static_cast<u32>(i + lo);
        u32 cur = best.load(std::memory_order_relaxed);
        while (cand < cur &&
               !best.compare_exchange_weak(cur, cand, std::memory_order_relaxed)) {
        }
        return;
      }
    }
  });
  return best.load(std::memory_order_relaxed);
}

}  // namespace sfcp::prim
