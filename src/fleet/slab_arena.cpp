#include "fleet/slab_arena.hpp"

#include <bit>
#include <new>

namespace sfcp::fleet {

SlabArena::~SlabArena() { trim(); }

std::size_t SlabArena::class_of_(std::size_t bytes, std::size_t align) noexcept {
  if (align > alignof(std::max_align_t)) return kNumClasses;
  const std::size_t want = bytes < kMinBlock ? kMinBlock : std::bit_ceil(bytes);
  const std::size_t cls = static_cast<std::size_t>(std::countr_zero(want / kMinBlock));
  return cls < kNumClasses ? cls : kNumClasses;
}

void* SlabArena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  const std::size_t cls = class_of_(bytes, align);
  if (cls == kNumClasses) {
    // Too big or too aligned to pool: exact pass-through to the heap.
    void* p = ::operator new(bytes, std::align_val_t(align));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.allocs;
    ++stats_.live_blocks;
    stats_.live_bytes += bytes;
    return p;
  }
  const std::size_t block = kMinBlock << cls;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_[cls].empty()) {
      void* p = pool_[cls].back();
      pool_[cls].pop_back();
      ++stats_.allocs;
      ++stats_.reuses;
      ++stats_.live_blocks;
      stats_.live_bytes += block;
      stats_.pooled_bytes -= block;
      return p;
    }
    ++stats_.allocs;
    ++stats_.live_blocks;
    stats_.live_bytes += block;
  }
  return ::operator new(block);
}

void SlabArena::deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  const std::size_t cls = class_of_(bytes, align);
  if (cls == kNumClasses) {
    ::operator delete(p, std::align_val_t(align));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frees;
    --stats_.live_blocks;
    stats_.live_bytes -= bytes;
    return;
  }
  const std::size_t block = kMinBlock << cls;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.frees;
  --stats_.live_blocks;
  stats_.live_bytes -= block;
  stats_.pooled_bytes += block;
  // push_back can throw bad_alloc in theory; a noexcept deallocate must not.
  try {
    pool_[cls].push_back(p);
  } catch (...) {
    stats_.pooled_bytes -= block;
    ::operator delete(p);
  }
}

void SlabArena::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& pool : pool_) {
    for (void* p : pool) ::operator delete(p);
    pool.clear();
    pool.shrink_to_fit();
  }
  stats_.pooled_bytes = 0;
}

SlabArena::Stats SlabArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sfcp::fleet
