#pragma once
// Incremental SFCP: maintain the coarsest f-stable partition of a live
// instance under a stream of edits, without re-solving from scratch on
// every change.
//
//   sfcp::inc::IncrementalSolver inc(inst);          // initial full solve
//   inc.set_b(x, 3);                                 // local repair
//   inc.set_f(y, z);                                 // split/merge cycles
//   inc.apply(edits);                                // batched
//   sfcp::core::PartitionView v = inc.view();        // O(dirty) snapshot
//   inc.save(os);                                    // warm checkpoint
//
// The engine rests on the coinductive characterization of the coarsest
// f-stable refinement Q of B:
//
//   Q(u) = Q(v)  <=>  B(u) = B(v)  and  Q(f(u)) = Q(f(v)),
//
// i.e. a node's class is determined by the infinite label string
// B(v) B(f(v)) B(f^2(v)) ...  An edit at node x only changes the strings of
// nodes whose orbit passes through x — the reverse-reachability closure of
// x (graph::dirty_region).  The repair relabels exactly that dirty set:
//
//   * cycles wholly inside the dirty set are (re)canonicalized — period +
//     minimal rotation of their B-string — and matched against a global
//     map from reduced cycle strings to label blocks, so an edited cycle
//     that becomes equivalent to a cycle in a distant component correctly
//     merges with it;
//   * dirty tree nodes are relabelled in BFS order from x (parents final
//     before children) through a global refcounted signature map
//     (B(v), Q(f(v))) -> label, which realizes the characterization above
//     verbatim.
//
// When the dirty region exceeds the RepairPolicy budget — or an edit lands
// where locality cannot help (e.g. relabelling a node on a giant cycle
// dirties its whole component) — the engine falls back to a full re-solve
// through its embedded core::Solver, whose warm workspaces make the rebuild
// as cheap as a steady-state batch solve.  Correctness therefore never
// depends on the repair path being taken.
//
// Read side: view() freezes the current partition into an immutable
// core::PartitionView.  The canonical renaming is maintained incrementally —
// repairs record which nodes they relabelled, and view() publishes exactly
// that delta on top of the previous view — so after k localized edits a view
// costs O(dirty) instead of the O(n) recanonicalization snapshot() used to
// pay.  Views are snapshots: a reader's view is untouched by later edits.
//
// Persistence: save() writes an `sfcp-checkpoint v1` stream (see util/io) —
// the instance, labels and the cycle/signature maps — and load() restores a
// warm engine without re-solving, so a serving process restarts in O(n) IO
// instead of a full solve.
//
// Thread-safety matches core::Solver: one IncrementalSolver per thread
// (views, once obtained, are freely shareable across threads).

#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solver.hpp"
#include "graph/reverse_adjacency.hpp"
#include "inc/edit.hpp"
#include "pram/execution_context.hpp"

namespace sfcp::inc {

/// Cost model deciding local repair vs. full re-solve.
struct RepairPolicy {
  /// Repair iff the dirty region has at most
  /// max(min_dirty_absolute, max_dirty_fraction * n) nodes.
  double max_dirty_fraction = 0.25;
  std::size_t min_dirty_absolute = 64;
  /// apply(edits): a batch of at least batch_rebuild_fraction * n edits is
  /// applied raw and followed by one full re-solve instead of per-edit work.
  double batch_rebuild_fraction = 1.0 / 16.0;

  std::size_t dirty_budget(std::size_t n) const {
    const auto frac = static_cast<std::size_t>(max_dirty_fraction * static_cast<double>(n));
    const std::size_t cap = frac > min_dirty_absolute ? frac : min_dirty_absolute;
    return cap < n ? cap : n;
  }
  std::size_t batch_rebuild_threshold(std::size_t n) const {
    const auto t = static_cast<std::size_t>(batch_rebuild_fraction * static_cast<double>(n));
    return t > 1 ? t : 1;
  }
};

/// Lifetime counters (monotonic; see also the pram::Metrics edit counters,
/// which are charged per edit to the session's metrics sink).
struct EditStats {
  u64 edits = 0;            ///< edits accepted (including no-ops)
  u64 repairs = 0;          ///< edits served by the local repair path
  u64 rebuilds = 0;         ///< edits (or batches) served by a full re-solve
  u64 dirty_nodes = 0;      ///< total nodes relabelled by repairs
  u64 cycles_created = 0;   ///< cycles formed by repairs
  u64 cycles_destroyed = 0; ///< cycles broken by repairs
};

class IncrementalSolver {
 public:
  /// Takes ownership of the instance and solves it once (validates; throws
  /// std::invalid_argument on malformed input).
  explicit IncrementalSolver(graph::Instance inst,
                             core::Options opt = core::Options::parallel(),
                             pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

  const graph::Instance& instance() const noexcept { return inst_; }
  std::size_t size() const noexcept { return inst_.size(); }

  /// Current labels: q(u) == q(v) iff u, v share a block.  Values are dense
  /// only after a rebuild; repairs may retire and mint labels, so use
  /// snapshot() for the canonical form.
  std::span<const u32> labels() const noexcept { return q_; }
  u32 label_of(u32 x) const { return q_.at(x); }
  u32 num_blocks() const noexcept { return distinct_; }

  /// Immutable snapshot of the current partition, stamped with epoch().
  /// Canonical labels are byte-identical to core::solve on the current
  /// instance; all Result counters (cycles, kept/residual tree nodes) are
  /// maintained incrementally and match field-for-field.  Cost is
  /// O(nodes relabelled since the previous view) — NOT O(n) — because each
  /// view is published as a delta on its predecessor; the view itself is
  /// isolated from any edits that follow.
  core::PartitionView view() const;

  /// view() as a classic Result record (copies the canonical labels).
  core::Result snapshot() const;

  /// Monotonic edit clock: bumped by every state-changing edit.  Views carry
  /// the epoch they were taken at.
  u64 epoch() const noexcept { return epoch_; }

  // ---- persistence (sfcp-checkpoint v1, see util/io.hpp) -----------------

  /// Serializes the instance, labels, cycle/signature maps, epoch and edit
  /// stats, so load() can restore a warm engine without re-solving.
  void save(std::ostream& os) const;

  /// Restores an engine from a save()d stream.  Throws std::runtime_error on
  /// malformed, truncated or inconsistent input; the solve configuration
  /// (options/context/policy) is supplied by the caller, not the stream.
  static IncrementalSolver load(std::istream& is, core::Options opt = core::Options::parallel(),
                                pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

  /// load() for dispatchers that already consumed and checked the 8-byte
  /// checkpoint magic (sfcp::load_engine_checkpoint autodetects the plain
  /// vs. sharded flavour from it).
  static IncrementalSolver load_body(std::istream& is,
                                     core::Options opt = core::Options::parallel(),
                                     pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

  /// Single edits.  Throw std::invalid_argument on out-of-range arguments;
  /// the partition is fully repaired on return.
  void set_f(u32 x, u32 y);
  void set_b(u32 x, u32 label);

  /// Batched edits, applied in order.  Large batches (RepairPolicy
  /// .batch_rebuild_fraction) short-circuit to raw array updates plus one
  /// full re-solve.  All edits are validated up front, before any state
  /// changes.
  void apply(std::span<const Edit> edits);

  const EditStats& stats() const noexcept { return stats_; }
  RepairPolicy& policy() noexcept { return policy_; }
  const RepairPolicy& policy() const noexcept { return policy_; }
  core::Solver& solver() noexcept { return solver_; }

 private:
  struct CycleClass {
    std::vector<u32> labels;  ///< label of phase t, size = period
    u32 refs = 0;             ///< live cycles with this reduced string
  };
  struct CycleRec {
    /// The classes_ key this cycle holds a reference on.  Pointers to
    /// unordered_map keys are stable across rehashes and other erasures, and
    /// destroy_cycle_ dereferences before erasing the pointee.
    const std::vector<u32>* key = nullptr;
    u32 length = 0;
  };
  struct SigRec {
    u32 label = 0;
    u32 refs = 0;
  };

  struct LoadTag {};
  IncrementalSolver(LoadTag, graph::Instance inst, core::Options opt,
                    pram::ExecutionContext ctx, RepairPolicy policy);

  void validate_edit_(const Edit& e) const;
  void apply_one_(const Edit& e);
  void raw_apply_(const Edit& e);
  void rebuild_();
  void repair_(u32 x, std::span<const u32> dirty);
  void finish_load_();  ///< derives all secondary state after a load()
  u32 residual_() const noexcept {
    return static_cast<u32>(inst_.size() - live_cycle_nodes_ - kept_);
  }
  u32 fresh_label_();
  void pop_inc_(u32 label, bool cycle);
  void pop_dec_(u32 label, bool cycle);
  void sig_remove_(u64 sig);
  u32 sig_assign_(u32 v);  ///< lookup-or-mint label for v's current signature
  void destroy_cycle_(u32 id);

  graph::Instance inst_;
  core::Solver solver_;
  RepairPolicy policy_;
  graph::ReverseAdjacency preds_;

  std::vector<u32> q_;
  std::vector<u64> sig_key_;  ///< signature each node holds in sigs_
  std::vector<u8> on_cycle_;
  std::vector<u32> cycle_id_;  ///< live cycle id, kNone for tree nodes

  std::unordered_map<u64, SigRec> sigs_;  ///< pack(B(v), Q(f(v))) -> label
  std::unordered_map<std::vector<u32>, CycleClass, U32VecHash> classes_;
  std::unordered_map<u32, CycleRec> cycles_;
  u32 next_cycle_id_ = 0;

  std::vector<u32> pop_;        ///< per-label population, indexed by label
  std::vector<u32> cycle_pop_;  ///< cycle nodes per label (kept/residual accounting)
  u32 next_label_ = 0;
  u32 distinct_ = 0;       ///< labels with pop > 0 (= current block count)
  u64 live_cycle_nodes_ = 0;
  u32 kept_ = 0;  ///< tree nodes sharing a label with a live cycle node

  u64 epoch_ = 0;

  // View maintenance: nodes relabelled since the last view (deduped via
  // pending_mark_) become the next view's patch delta; a rebuild invalidates
  // the chain (labels are renamed from scratch) and forces a fresh root.
  mutable core::PartitionView last_view_;
  mutable u64 last_view_epoch_ = 0;
  mutable bool view_root_stale_ = true;
  mutable std::vector<u32> pending_;
  mutable std::vector<u8> pending_mark_;

  std::vector<u32> dirty_buf_;
  std::vector<u32> cyc_buf_;
  std::vector<u32> str_buf_;
  EditStats stats_;
};

/// Checkpoint file helpers (open + save()/load() with path-naming errors).
void save_checkpoint_file(const std::string& path, const IncrementalSolver& solver);
IncrementalSolver load_checkpoint_file(const std::string& path,
                                       core::Options opt = core::Options::parallel(),
                                       pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

}  // namespace sfcp::inc
