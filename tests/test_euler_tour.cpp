// Unit tests for Euler tours of rooted forests.
#include <gtest/gtest.h>

#include "graph/cycle_structure.hpp"
#include "graph/euler_tour.hpp"
#include "graph/rooted_forest.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

using graph::build_euler_tour;
using graph::build_rooted_forest;
using graph::cycle_structure;
using graph::EulerTour;
using graph::RootedForest;

RootedForest forest_of(const graph::Instance& inst) {
  const auto cs = cycle_structure(inst.f, graph::CycleStructureStrategy::Sequential);
  return build_rooted_forest(inst.f, cs.on_cycle);
}

// Structural checks: the tour is a permutation of all used arcs; every
// down-arc precedes its up-arc; nesting is balanced per tree.
void check_tour(const RootedForest& forest, const EulerTour& tour) {
  const std::size_t n = forest.size();
  std::size_t tree_nodes = 0;
  for (u32 x = 0; x < n; ++x) tree_nodes += forest.is_root[x] ? 0 : 1;
  ASSERT_EQ(tour.order.size(), 2 * tree_nodes);
  std::vector<u8> seen(tour.order.size(), 0);
  for (std::size_t p = 0; p < tour.order.size(); ++p) {
    const u32 arc = tour.order[p];
    ASSERT_NE(arc, kNone) << "hole at position " << p;
    EXPECT_EQ(tour.pos[arc], p);
    seen[p] = 1;
  }
  i64 depth = 0;
  for (std::size_t p = 0; p < tour.order.size(); ++p) {
    if (tour.seg_start[p]) EXPECT_EQ(depth, 0) << "unbalanced tour at segment start " << p;
    depth += EulerTour::is_down(tour.order[p]) ? 1 : -1;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  for (u32 x = 0; x < n; ++x) {
    if (forest.is_root[x]) {
      EXPECT_EQ(tour.pos[EulerTour::down_arc(x)], kNone);
      EXPECT_EQ(tour.pos[EulerTour::up_arc(x)], kNone);
    } else {
      EXPECT_LT(tour.pos[EulerTour::down_arc(x)], tour.pos[EulerTour::up_arc(x)]);
    }
  }
  // Parent's down-arc encloses the child's.
  for (u32 x = 0; x < n; ++x) {
    if (forest.is_root[x]) continue;
    const u32 p = forest.parent[x];
    if (forest.is_root[p]) continue;
    EXPECT_LT(tour.pos[EulerTour::down_arc(p)], tour.pos[EulerTour::down_arc(x)]);
    EXPECT_GT(tour.pos[EulerTour::up_arc(p)], tour.pos[EulerTour::up_arc(x)]);
  }
}

TEST(EulerTourTest, NoTreeNodes) {
  std::vector<u32> f{1, 0};
  graph::Instance inst{{1, 0}, {0, 0}};
  const auto forest = forest_of(inst);
  const auto tour = build_euler_tour(forest);
  EXPECT_TRUE(tour.order.empty());
}

TEST(EulerTourTest, SinglePathIntoSelfLoop) {
  // 0 self-loop; 1 -> 0; 2 -> 1
  graph::Instance inst{{0, 0, 1}, {0, 0, 0}};
  const auto forest = forest_of(inst);
  const auto tour = build_euler_tour(forest);
  ASSERT_EQ(tour.order.size(), 4u);
  EXPECT_EQ(tour.order[0], EulerTour::down_arc(1));
  EXPECT_EQ(tour.order[1], EulerTour::down_arc(2));
  EXPECT_EQ(tour.order[2], EulerTour::up_arc(2));
  EXPECT_EQ(tour.order[3], EulerTour::up_arc(1));
  check_tour(forest, tour);
}

TEST(EulerTourTest, StarTree) {
  // 0 self-loop; 1..5 -> 0
  graph::Instance inst{{0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0}};
  const auto forest = forest_of(inst);
  const auto tour = build_euler_tour(forest);
  ASSERT_EQ(tour.order.size(), 10u);
  check_tour(forest, tour);
  // Siblings appear in ascending order (deterministic construction).
  EXPECT_EQ(tour.order[0], EulerTour::down_arc(1));
  EXPECT_EQ(tour.order[2], EulerTour::down_arc(2));
}

TEST(EulerTourTest, MultipleTreesChained) {
  // Two self-loops 0 and 1; 2 -> 0, 3 -> 1.
  graph::Instance inst{{0, 1, 0, 1}, {0, 0, 0, 0}};
  const auto forest = forest_of(inst);
  const auto tour = build_euler_tour(forest);
  ASSERT_EQ(tour.order.size(), 4u);
  EXPECT_EQ(tour.seg_start[0], 1);
  EXPECT_EQ(tour.seg_start[2], 1);
  check_tour(forest, tour);
}

class EulerTourSweep : public ::testing::TestWithParam<prim::ListRankStrategy> {};

TEST_P(EulerTourSweep, RandomForestsAllRankingStrategies) {
  util::Rng rng(701);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = util::random_function(1 + rng.below(3000), 3, rng);
    const auto forest = forest_of(inst);
    const auto tour = build_euler_tour(forest, GetParam());
    check_tour(forest, tour);
  }
}

INSTANTIATE_TEST_SUITE_P(Rankings, EulerTourSweep,
                         ::testing::Values(prim::ListRankStrategy::Sequential,
                                           prim::ListRankStrategy::PointerJumping,
                                           prim::ListRankStrategy::RulingSet));

TEST(EulerTourTest, DeepPath) {
  util::Rng rng(709);
  const auto inst = util::long_tail(20000, 3, 2, rng);
  const auto forest = forest_of(inst);
  check_tour(forest, build_euler_tour(forest));
}

}  // namespace
}  // namespace sfcp
