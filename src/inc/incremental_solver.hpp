#pragma once
// Incremental SFCP: maintain the coarsest f-stable partition of a live
// instance under a stream of edits, without re-solving from scratch on
// every change.
//
//   sfcp::inc::IncrementalSolver inc(inst);          // initial full solve
//   inc.set_b(x, 3);                                 // local repair
//   inc.set_f(y, z);                                 // split/merge cycles
//   inc.apply(edits);                                // batched
//   sfcp::core::PartitionView v = inc.view();        // O(dirty) snapshot
//   inc.save(os);                                    // warm checkpoint
//
// The engine rests on the coinductive characterization of the coarsest
// f-stable refinement Q of B:
//
//   Q(u) = Q(v)  <=>  B(u) = B(v)  and  Q(f(u)) = Q(f(v)),
//
// i.e. a node's class is determined by the infinite label string
// B(v) B(f(v)) B(f^2(v)) ...  An edit at node x only changes the strings of
// nodes whose orbit passes through x — the reverse-reachability closure of
// x (graph::dirty_region).  The repair relabels exactly that dirty set:
//
//   * cycles wholly inside the dirty set are (re)canonicalized — period +
//     minimal rotation of their B-string — and matched against a global
//     map from reduced cycle strings to label blocks, so an edited cycle
//     that becomes equivalent to a cycle in a distant component correctly
//     merges with it;
//   * dirty tree nodes are relabelled in BFS order from x (parents final
//     before children) through a global refcounted signature map
//     (B(v), Q(f(v))) -> label, which realizes the characterization above
//     verbatim.
//
// When the dirty region exceeds the RepairPolicy budget — or an edit lands
// where locality cannot help (e.g. relabelling a node on a giant cycle
// dirties its whole component) — the engine falls back to a full re-solve
// through its embedded core::Solver, whose warm workspaces make the rebuild
// as cheap as a steady-state batch solve.  Correctness therefore never
// depends on the repair path being taken.
//
// Read side: every repair accumulates into a structured inc::RepairDelta —
// the relabelled nodes plus the created/destroyed/resized raw label classes
// (see inc/repair_delta.hpp).  view() flushes that delta and publishes
// exactly its node list as a COW patch on the previous view, so after k
// localized edits a view costs O(dirty) instead of the O(n)
// recanonicalization snapshot() used to pay; merge layers (the sharded
// engine) instead flush via take_delta() and update their cross-shard maps
// at O(dirty classes).  Views are snapshots: a reader's view is untouched
// by later edits.
//
// Why consumers may skip "resized" classes: a raw label's identity — its
// (B, Q∘f) signature for tree classes, its reduced cycle string and phase
// for cycle classes — is immutable for the label's whole live span.  A
// label's population can never dip to zero and revive (tree labels re-mint
// through the signature map; a cycle label's phases are repopulated only
// while some live cycle still holds its class entry, which itself keeps the
// populations positive), so live-throughout labels kept their binding and
// only created/destroyed ones carry reconciliation work.
//
// Persistence: save() writes an `sfcp-checkpoint v1` stream (see util/io) —
// the instance, labels and the cycle/signature maps — and load() restores a
// warm engine without re-solving, so a serving process restarts in O(n) IO
// instead of a full solve.
//
// Thread-safety matches core::Solver: one IncrementalSolver per thread
// (views, once obtained, are freely shareable across threads).

#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solver.hpp"
#include "graph/reverse_adjacency.hpp"
#include "inc/edit.hpp"
#include "inc/repair_delta.hpp"
#include "pram/arena.hpp"
#include "pram/execution_context.hpp"
#include "pram/metrics.hpp"

namespace sfcp::inc {

/// Cost model deciding local repair vs. full re-solve.  Two modes:
///
///   * static (default): repair iff the dirty region has at most
///     max(min_dirty_absolute, max_dirty_fraction * n) nodes;
///   * adaptive: the crossover is fitted online from observed per-delta
///     costs — the solver feeds every repair (wall ns per dirty node) and
///     every rebuild (wall ns) into a pram::CostModel, and the budget is
///     the fitted break-even dirty count.  Until the fit has evidence on
///     both sides (the construction solve anchors the rebuild side) the
///     static formula decides.
struct RepairPolicy {
  double max_dirty_fraction = 0.25;
  std::size_t min_dirty_absolute = 64;
  /// apply(edits): a batch of at least batch_rebuild_fraction * n edits is
  /// applied raw and followed by one full re-solve instead of per-edit work.
  double batch_rebuild_fraction = 1.0 / 16.0;
  /// Fit the repair-vs-rebuild crossover online instead of trusting
  /// max_dirty_fraction (see above).
  bool adaptive = false;
  /// EWMA smoothing for the adaptive cost fit.
  double ewma_alpha = 0.25;

  std::size_t dirty_budget(std::size_t n) const {
    const auto frac = static_cast<std::size_t>(max_dirty_fraction * static_cast<double>(n));
    const std::size_t cap = frac > min_dirty_absolute ? frac : min_dirty_absolute;
    return cap < n ? cap : n;
  }
  /// The budget the solver actually uses: the fitted crossover in adaptive
  /// mode (clamped to [min_dirty_absolute, n]), the static formula before
  /// the fit converges or in static mode.
  std::size_t dirty_budget(std::size_t n, const pram::CostModel& fit) const {
    return adaptive ? fit.budget(n, min_dirty_absolute, dirty_budget(n)) : dirty_budget(n);
  }
  std::size_t batch_rebuild_threshold(std::size_t n) const {
    const auto t = static_cast<std::size_t>(batch_rebuild_fraction * static_cast<double>(n));
    return t > 1 ? t : 1;
  }
};

/// Lifetime counters (monotonic; see also the pram::Metrics edit counters,
/// which are charged per edit to the session's metrics sink).
struct EditStats {
  u64 edits = 0;            ///< edits accepted (including no-ops)
  u64 repairs = 0;          ///< edits served by the local repair path
  u64 rebuilds = 0;         ///< edits (or batches) served by a full re-solve
  u64 dirty_nodes = 0;      ///< total nodes relabelled by repairs
  u64 cycles_created = 0;   ///< cycles formed by repairs
  u64 cycles_destroyed = 0; ///< cycles broken by repairs

  /// Aggregation across solvers (the sharded engine sums its shards).
  EditStats& operator+=(const EditStats& o) noexcept {
    edits += o.edits;
    repairs += o.repairs;
    rebuilds += o.rebuilds;
    dirty_nodes += o.dirty_nodes;
    cycles_created += o.cycles_created;
    cycles_destroyed += o.cycles_destroyed;
    return *this;
  }
};

class IncrementalSolver {
 public:
  /// Takes ownership of the instance and solves it once (validates; throws
  /// std::invalid_argument on malformed input).
  explicit IncrementalSolver(graph::Instance inst,
                             core::Options opt = core::Options::parallel(),
                             pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

  /// Seeds a warm engine from an already-computed solve of `inst`: `r` must
  /// be core::solve's result for exactly this instance and `ws` the
  /// workspace that solve left behind (its cycle structure describes r).
  /// No re-solve happens — this is the batched cold-start path, where
  /// core::Solver::solve_batch's consumer constructs one engine per solved
  /// instance on the worker that solved it.  Throws std::invalid_argument
  /// when r's size disagrees with the instance.
  IncrementalSolver(graph::Instance inst, const core::Result& r,
                    const core::SolveWorkspace& ws,
                    core::Options opt = core::Options::parallel(),
                    pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

  const graph::Instance& instance() const noexcept { return inst_; }
  std::size_t size() const noexcept { return inst_.size(); }

  /// Current labels: q(u) == q(v) iff u, v share a block.  Values are dense
  /// only after a rebuild; repairs may retire and mint labels, so use
  /// snapshot() for the canonical form.
  std::span<const u32> labels() const noexcept { return q_; }
  u32 label_of(u32 x) const { return q_.at(x); }
  u32 num_blocks() const noexcept { return distinct_; }

  /// Immutable snapshot of the current partition, stamped with epoch().
  /// Canonical labels are byte-identical to core::solve on the current
  /// instance; all Result counters (cycles, kept/residual tree nodes) are
  /// maintained incrementally and match field-for-field.  Cost is
  /// O(nodes relabelled since the previous view) — NOT O(n) — because each
  /// view is published as a delta on its predecessor; the view itself is
  /// isolated from any edits that follow.
  core::PartitionView view() const;

  /// view() as a classic Result record (copies the canonical labels).
  core::Result snapshot() const;

  /// Monotonic edit clock: bumped by every state-changing edit.  Views carry
  /// the epoch they were taken at.
  u64 epoch() const noexcept { return epoch_; }

  // ---- persistence (sfcp-checkpoint v1, see util/io.hpp) -----------------

  /// Serializes the instance, labels, cycle/signature maps, epoch and edit
  /// stats, so load() can restore a warm engine without re-solving.
  void save(std::ostream& os) const;

  /// Restores an engine from a save()d stream.  Throws std::runtime_error on
  /// malformed, truncated or inconsistent input; the solve configuration
  /// (options/context/policy) is supplied by the caller, not the stream.
  static IncrementalSolver load(std::istream& is, core::Options opt = core::Options::parallel(),
                                pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

  /// load() for dispatchers that already consumed and checked the 8-byte
  /// checkpoint magic (sfcp::load_engine_checkpoint autodetects the plain
  /// vs. sharded flavour from it).
  static IncrementalSolver load_body(std::istream& is,
                                     core::Options opt = core::Options::parallel(),
                                     pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

  /// Single edits.  Throw std::invalid_argument on out-of-range arguments;
  /// the partition is fully repaired on return.
  void set_f(u32 x, u32 y);
  void set_b(u32 x, u32 label);

  /// Batched edits, applied in order.  Large batches (RepairPolicy
  /// .batch_rebuild_fraction) short-circuit to raw array updates plus one
  /// full re-solve.  All edits are validated up front, before any state
  /// changes.
  void apply(std::span<const Edit> edits);

  // ---- the repair delta (see inc/repair_delta.hpp) -----------------------

  /// Flushes and returns the delta accumulated since the previous flush
  /// (take_delta or view) — every edit accumulates into it.  Taking the
  /// delta hands the relabelled-node list to the caller, so the solver's
  /// own next view() re-roots instead of patching; a consumer uses either
  /// take_delta() (merge layers) or view() (plain serving), not both.
  RepairDelta take_delta();

  /// Flushes the notification window: the nodes the views published since
  /// the previous take_view_delta() relabelled, or a whole-partition
  /// downgrade when any of them re-rooted (rebuild, restore, construction).
  /// Unlike take_delta(), taking the view delta never disturbs the view
  /// patch chain — it is a read-side tap for change feeds (serve::Server).
  ViewDelta take_view_delta();

  /// Lifetime totals over flushed deltas.
  const DeltaStats& delta_stats() const noexcept { return delta_stats_; }

  /// The observed repair-vs-rebuild cost fit (units = dirty nodes).  Always
  /// maintained, consulted by the policy only in adaptive mode.
  const pram::CostModel& cost_model() const noexcept { return cost_fit_; }

  // ---- reconciliation probes (merge layers, e.g. shard::ShardedEngine) ---

  /// Exclusive upper bound on raw label values (labels() entries).
  u32 label_bound() const noexcept { return next_label_; }

  /// Whether node v currently lies on a cycle.
  bool node_on_cycle(u32 v) const { return on_cycle_.at(v) != 0; }

  /// The reduced cycle class of a cycle node: key is the canonical
  /// (period-reduced, minimally rotated) B-string, labels the raw label of
  /// each phase — key[t] is the B value of the class labelled labels[t].
  /// The spans alias solver internals and are invalidated by the next edit.
  /// Throws std::out_of_range / std::invalid_argument for tree nodes.
  struct CycleClassRef {
    std::span<const u32> key;
    std::span<const u32> labels;
  };
  CycleClassRef cycle_class_of(u32 v) const;

  /// Solve-shaped counters of the current partition, without building a
  /// view (what view() would stamp on one).
  core::ViewCounters view_counters() const noexcept {
    return core::ViewCounters{static_cast<u32>(cycles_.size()),
                              static_cast<u32>(live_cycle_nodes_), kept_, residual_()};
  }

  const EditStats& stats() const noexcept { return stats_; }
  RepairPolicy& policy() noexcept { return policy_; }
  const RepairPolicy& policy() const noexcept { return policy_; }
  core::Solver& solver() noexcept { return solver_; }

  /// Coarse resident-size estimate: the capacities of the persistent
  /// per-node/per-label arrays plus the instance and map loads.  Used by
  /// size-aware admission (fleet::FleetEngine); not an exact malloc total.
  std::size_t footprint_bytes() const noexcept;

 private:
  struct CycleClass {
    std::vector<u32> labels;  ///< label of phase t, size = period
    u32 refs = 0;             ///< live cycles with this reduced string
  };
  struct CycleRec {
    /// The classes_ key this cycle holds a reference on.  Pointers to
    /// unordered_map keys are stable across rehashes and other erasures, and
    /// destroy_cycle_ dereferences before erasing the pointee.
    const std::vector<u32>* key = nullptr;
    u32 length = 0;
  };
  struct SigRec {
    u32 label = 0;
    u32 refs = 0;
  };

  struct LoadTag {};
  IncrementalSolver(LoadTag, graph::Instance inst, core::Options opt,
                    pram::ExecutionContext ctx, RepairPolicy policy);

  void validate_edit_(const Edit& e) const;
  void apply_one_(const Edit& e);
  void raw_apply_(const Edit& e);
  void rebuild_();
  /// Seeds labels/classes/signatures from a finished solve of inst_ — the
  /// shared tail of rebuild_() and the seeded constructor.
  void seed_from_solve_(const core::Result& r, const core::SolveWorkspace& ws);
  void repair_(u32 x, std::span<const u32> dirty);
  /// Flush impl (delta state is mutable).  classify == false skips
  /// materializing the per-class lists (the view path discards them); the
  /// category counts still reach delta_stats_ either way.
  RepairDelta take_delta_(bool classify) const;
  void note_label_(u32 label, bool live_before);
  void mark_full_delta_();
  void finish_load_();  ///< derives all secondary state after a load()
  u32 residual_() const noexcept {
    return static_cast<u32>(inst_.size() - live_cycle_nodes_ - kept_);
  }
  u32 fresh_label_();
  void pop_inc_(u32 label, bool cycle);
  void pop_dec_(u32 label, bool cycle);
  void sig_remove_(u64 sig);
  u32 sig_assign_(u32 v);  ///< lookup-or-mint label for v's current signature
  void destroy_cycle_(u32 id);

  graph::Instance inst_;
  core::Solver solver_;
  RepairPolicy policy_;
  graph::ReverseAdjacency preds_;

  // The long-lived per-node/per-label arrays draw from the session arena
  // (ctx.arena, null = heap), so a fleet of warm solvers recycles slabs
  // instead of paying per-instance malloc churn.  Scratch buffers and the
  // delta window stay on the heap: they are transient and some are bound to
  // plain std::vector& by graph helpers.
  pram::ArenaAllocator<u32> alloc_;

  pram::avector<u32> q_;
  pram::avector<u64> sig_key_;  ///< signature each node holds in sigs_
  pram::avector<u8> on_cycle_;
  pram::avector<u32> cycle_id_;  ///< live cycle id, kNone for tree nodes

  std::unordered_map<u64, SigRec> sigs_;  ///< pack(B(v), Q(f(v))) -> label
  std::unordered_map<std::vector<u32>, CycleClass, U32VecHash> classes_;
  std::unordered_map<u32, CycleRec> cycles_;
  u32 next_cycle_id_ = 0;

  pram::avector<u32> pop_;        ///< per-label population, indexed by label
  pram::avector<u32> cycle_pop_;  ///< cycle nodes per label (kept/residual accounting)
  u32 next_label_ = 0;
  u32 distinct_ = 0;       ///< labels with pop > 0 (= current block count)
  u64 live_cycle_nodes_ = 0;
  u32 kept_ = 0;  ///< tree nodes sharing a label with a live cycle node

  u64 epoch_ = 0;

  // Delta accumulation: every repair folds its relabelled nodes (deduped
  // via delta_mark_) and per-label population transitions into delta_;
  // take_delta_() classifies the touched labels into created/destroyed/
  // resized and resets the window.  A rebuild marks the window full.  The
  // touch records are label-indexed arrays (not a hash map) because they
  // sit on the per-dirty-node hot path; all three grow with fresh_label_.
  // The fields are mutable because view() — logically const — is a flush
  // point.
  mutable RepairDelta delta_;
  mutable std::vector<u8> delta_mark_;        ///< per node: in delta_.nodes
  mutable std::vector<u32> delta_touched_;    ///< touched labels, touch order
  mutable std::vector<u8> delta_touch_mark_;  ///< per label: in delta_touched_
  mutable std::vector<u8> delta_live_before_; ///< per label: live at first touch
  mutable DeltaStats delta_stats_;

  // View maintenance: the delta's relabelled nodes become the next view's
  // patch; a rebuild (or an externally taken delta) invalidates the chain
  // and forces a fresh root.
  mutable core::PartitionView last_view_;
  mutable u64 last_view_epoch_ = 0;
  mutable bool view_root_stale_ = true;

  // Notification window (take_view_delta): nodes the published views'
  // patches carried; full when any view in the window was a fresh root.
  // Capped at n nodes — past that a full refresh is cheaper to consume.
  mutable std::vector<u32> view_delta_nodes_;
  mutable bool view_delta_full_ = true;

  pram::CostModel cost_fit_;  ///< repair-vs-rebuild fit (units = dirty nodes)

  std::vector<u32> dirty_buf_;
  std::vector<u32> cyc_buf_;
  std::vector<u32> str_buf_;
  EditStats stats_;
};

/// Checkpoint file helpers (open + save()/load() with path-naming errors).
void save_checkpoint_file(const std::string& path, const IncrementalSolver& solver);
IncrementalSolver load_checkpoint_file(const std::string& path,
                                       core::Options opt = core::Options::parallel(),
                                       pram::ExecutionContext ctx = {}, RepairPolicy policy = {});

}  // namespace sfcp::inc
