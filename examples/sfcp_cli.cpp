// Command-line front end for the library: generate, solve and verify SFCP
// instances stored in the plain-text format of util/io.hpp.
//
//   $ ./sfcp_cli gen random 1000 4 instance.txt     # n=1000, 4 B-labels
//   $ ./sfcp_cli gen cycles 64 16 instance.txt      # 64 cycles of length 16
//   $ ./sfcp_cli solve instance.txt                 # prints Q summary
//   $ ./sfcp_cli solve instance.txt --strategy sequential
//   $ ./sfcp_cli solve instance.txt --strategy powers-jump-double --threads 2
//   $ ./sfcp_cli solve instance.txt --engine incremental
//   $ ./sfcp_cli solve instance.txt --engine sharded --shards 4
//   $ ./sfcp_cli solve instance.txt --engine incremental --policy adaptive
//   $ ./sfcp_cli solve instance.txt --engine sharded --max-dirty-fraction 0.1
//   $ ./sfcp_cli solve --help                        # full option list
//   $ ./sfcp_cli classes instance.txt 5             # largest Q-classes
//   $ ./sfcp_cli strategies                         # list registry entries
//   $ ./sfcp_cli engines                            # list engine kinds
//   $ ./sfcp_cli verify instance.txt                # solve + oracle check
//   $ ./sfcp_cli stats instance.txt                 # orbit statistics
//   $ ./sfcp_cli dot instance.txt > graph.dot       # Graphviz, Q-clustered
//   $ ./sfcp_cli serve instance.txt --port 7227 --journal edits.wal
//   $ ./sfcp_cli fleet --port 7227 --warm 4096      # multi-tenant fleet server
//   $ ./sfcp_cli connect 127.0.0.1:7227             # sfcp-wire REPL
//   $ ./sfcp_cli --version
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fleet/fleet_engine.hpp"
#include "serve/client.hpp"
#include "serve/repl.hpp"
#include "serve/server.hpp"
#include "sfcp.hpp"

#ifndef SFCP_VERSION
#define SFCP_VERSION "dev"
#endif

namespace {

using namespace sfcp;

const char* kUsage =
    "usage: sfcp_cli {gen|solve|classes|verify|stats|dot|strategies|engines|serve|fleet|connect} ...\n"
    "       sfcp_cli --version\n"
    "  gen {random|cycles|tail} <n-or-k> <param> <out-file>   generate an instance\n"
    "  solve <instance> [options]       solve and summarize ('solve --help' for options)\n"
    "  classes <instance> [top]         largest canonical classes\n"
    "  verify <instance>                solve + oracle check\n"
    "  stats <instance>                 orbit statistics\n"
    "  dot <instance>                   Graphviz output, Q-clustered\n"
    "  strategies | engines             list registry entries\n"
    "  serve <instance> [options]       serve over TCP ('serve --help' for options)\n"
    "  fleet [options]                  multi-tenant fleet server ('fleet --help')\n"
    "  connect [host:]port              interactive sfcp-wire REPL\n";

int cmd_gen(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: sfcp_cli gen {random|cycles|tail} <n-or-k> <param> <out-file>\n";
    return 2;
  }
  const std::string kind = argv[0];
  const std::size_t a = std::strtoul(argv[1], nullptr, 10);
  const std::size_t b = std::strtoul(argv[2], nullptr, 10);
  util::Rng rng(20260612);
  graph::Instance inst;
  if (kind == "random") {
    inst = util::random_function(a, static_cast<u32>(b), rng);
  } else if (kind == "cycles") {
    inst = util::equal_cycles(a, b, 4, 3, rng);
  } else if (kind == "tail") {
    inst = util::long_tail(a, b, 3, rng);
  } else {
    std::cerr << "unknown generator '" << kind << "'\n";
    return 2;
  }
  util::save_instance_file(argv[3], inst);
  std::cout << "wrote " << inst.size() << "-node instance to " << argv[3] << "\n";
  return 0;
}

void print_solve_help() {
  std::cout
      << "usage: sfcp_cli solve <instance> [options]\n"
         "  --strategy <name>         solver strategy (see 'sfcp_cli strategies'); default\n"
         "                            'parallel'.  --seq is shorthand for 'sequential'.\n"
         "  --threads <t>             worker threads for the session (0 = library default)\n"
         "  --engine <kind>           serving engine (see 'sfcp_cli engines'): 'batch' (one\n"
         "                            lazy solve), 'incremental' (per-edit repair, warm\n"
         "                            state), 'sharded' (component-parallel shards behind a\n"
         "                            per-class reconciliation merge).  Default 'batch'.\n"
         "  --shards <k>              shard count; implies --engine sharded\n"
         "  --policy static|adaptive  repair-vs-rebuild (and, for sharded, migrate-vs-\n"
         "                            reshard) policy mode.  'static' trusts the dirty-\n"
         "                            fraction thresholds; 'adaptive' fits the crossover\n"
         "                            online from observed per-delta costs (EWMA of wall ns\n"
         "                            per dirty node vs. ns per rebuild, pram::CostModel).\n"
         "                            Needs --engine incremental or sharded.\n"
         "  --max-dirty-fraction <f>  static repair budget: repair iff the dirty region is\n"
         "                            at most max(64, f * n) nodes (default 0.25); also the\n"
         "                            fallback while an adaptive fit converges.  Needs\n"
         "                            --engine incremental or sharded.\n"
         "  --profile                 print the per-phase profile tree after the summary\n"
         "                            (needs a -DSFCP_PROFILE=ON build to carry data)\n";
}

int cmd_solve(const std::string& path, const std::string& strategy, int threads,
              const std::string& engine_kind, std::size_t shards, bool adaptive,
              double max_dirty_fraction, bool profile) {
  auto inst = util::load_instance_file(path);
  const std::size_t n = inst.size();
  pram::Metrics metrics;
  prof::Profiler profiler;
  std::optional<prof::ScopedProfiler> prof_guard;
  if (profile) prof_guard.emplace(profiler);
  util::Timer timer;
  const auto ctx = pram::ExecutionContext{}.with_threads(threads).with_metrics(&metrics);
  inc::RepairPolicy repair;
  repair.adaptive = adaptive;
  if (max_dirty_fraction >= 0.0) repair.max_dirty_fraction = max_dirty_fraction;
  // Programs against the engine facade: the same lines serve "batch" (one
  // solve), "incremental" (solve + warm repair state for edits) and
  // "sharded" (component-parallel shards; --shards overrides the default k).
  // Engines that own a policy are built directly so --policy and
  // --max-dirty-fraction reach them.
  std::unique_ptr<Engine> engine;
  if (engine_kind == "sharded") {
    shard::ShardOptions sopt;
    if (shards > 0) sopt.shards = shards;
    sopt.repair = repair;
    sopt.reshard.adaptive = adaptive;
    engine = std::make_unique<shard::ShardedEngine>(std::move(inst),
                                                    sfcp::registry().at(strategy), ctx, sopt);
  } else if (engine_kind == "incremental") {
    engine = std::make_unique<IncrementalEngine>(std::move(inst),
                                                 sfcp::registry().at(strategy), ctx, repair);
  } else {
    engine =
        sfcp::engines().make(engine_kind, std::move(inst), sfcp::registry().at(strategy), ctx);
  }
  const core::PartitionView v = engine->view();
  const core::ViewCounters& c = v.counters();
  std::cout << "n=" << n << "  engine=" << engine->kind() << "  strategy=" << strategy
            << "  classes=" << v.num_classes() << "  cycles=" << c.num_cycles
            << "  cycle_nodes=" << c.cycle_nodes;
  const EngineStats es = engine->serving_stats();
  if (es.shards > 0) std::cout << "  shards=" << es.shards;
  if (engine_kind != "batch") {
    std::cout << "  policy=" << (adaptive ? "adaptive" : "static");
  }
  std::cout << "\n"
            << "time=" << timer.millis() << "ms  " << metrics.summary() << "\n";
  if (profile) profiler.snapshot().render(std::cout);
  return 0;
}

int cmd_classes(const std::string& path, std::size_t top) {
  const auto inst = util::load_instance_file(path);
  core::Solver solver;
  const core::PartitionView v = solver.solve_view(inst);
  std::vector<u32> ids(v.num_classes());
  for (u32 c = 0; c < v.num_classes(); ++c) ids[c] = c;
  std::stable_sort(ids.begin(), ids.end(),
                   [&](u32 a, u32 b) { return v.class_size(a) > v.class_size(b); });
  std::cout << "n=" << v.size() << "  classes=" << v.num_classes() << "\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(top, ids.size()); ++i) {
    const auto members = v.class_members(ids[i]);
    std::cout << "  class " << ids[i] << " (" << members.size() << "):";
    const std::size_t shown = std::min<std::size_t>(members.size(), 10);
    for (std::size_t j = 0; j < shown; ++j) std::cout << ' ' << members[j];
    if (shown < members.size()) std::cout << " ...";
    std::cout << "\n";
  }
  return 0;
}

int cmd_strategies() {
  for (const auto& e : sfcp::registry().all()) {
    std::cout << e.name << "\n    " << e.description << "\n";
  }
  return 0;
}

int cmd_engines() {
  for (const auto& e : sfcp::engines().all()) {
    std::cout << e.name << "\n    " << e.description << "\n";
  }
  return 0;
}

int cmd_verify(const std::string& path) {
  const auto inst = util::load_instance_file(path);
  const auto r = core::solve(inst);
  const auto report = core::verify_solution(inst, r.q);
  std::cout << report.to_string() << "\n";
  return report.ok() ? 0 : 1;
}

int cmd_stats(const std::string& path) {
  const auto inst = util::load_instance_file(path);
  const auto st = graph::orbit_stats(inst.f);
  std::cout << "n=" << inst.size() << "  components=" << st.num_components
            << "  cycle_nodes=" << st.cycle_nodes << "  max_cycle=" << st.max_cycle_len
            << "  max_tail=" << st.max_tail << "  mean_tail=" << st.mean_tail << "\n";
  return 0;
}

int cmd_dot(const std::string& path) {
  const auto inst = util::load_instance_file(path);
  const auto r = core::solve(inst);
  util::DotOptions opts;
  opts.cluster_by_q = true;
  util::write_dot(std::cout, inst, r.q, opts);
  return 0;
}

void print_serve_help() {
  std::cout
      << "usage: sfcp_cli serve <instance> [options]\n"
         "  --host <addr>             bind address (default 127.0.0.1)\n"
         "  --port <p>                TCP port (default 0 = ephemeral, printed at start)\n"
         "  --engine <kind>           serving engine (default 'incremental')\n"
         "  --journal <path>          write-ahead edit journal; restart replays it on top\n"
         "                            of the last checkpoint (durable serving)\n"
         "  --fsync always|epoch|off  journal durability (default 'epoch': one fsync per\n"
         "                            epoch flush)\n"
         "  --checkpoint <path>       checkpoint target (default '<journal>.ckpt'); loaded\n"
         "                            at startup when present\n"
         "  --checkpoint-every <k>    auto-checkpoint (and reset the journal) every k\n"
         "                            accepted edits (default 0 = only on request)\n"
         "  --pool-threads <t>        worker-pool width for epoch applies (default -1 =\n"
         "                            auto from the session thread budget; 0/1 = never\n"
         "                            pool; >= 2 = exactly t lanes incl. the event loop)\n";
}

int cmd_serve(int argc, char** argv) {
  const std::string path = argv[0];
  serve::ServerOptions opt;
  std::string engine_kind = "incremental";
  u64 checkpoint_every = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      print_serve_help();
      return 0;
    } else if (arg == "--host" && i + 1 < argc) {
      opt.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      opt.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_kind = argv[++i];
    } else if (arg == "--journal" && i + 1 < argc) {
      opt.journal_path = argv[++i];
    } else if (arg == "--fsync" && i + 1 < argc) {
      opt.fsync = serve::parse_fsync_policy(argv[++i]);
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      opt.checkpoint_path = argv[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--pool-threads" && i + 1 < argc) {
      opt.pool_threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::cerr << "unknown serve option '" << arg << "' (try 'serve --help')\n";
      return 2;
    }
  }
  opt.checkpoint_every = checkpoint_every;
  if (!engines().find(engine_kind)) {
    std::cerr << "unknown engine '" << engine_kind << "' (see 'sfcp_cli engines')\n";
    return 2;
  }
  // A configured checkpoint restores warm state; the Server constructor then
  // replays the journal tail on top of it.
  std::string ckpt = opt.checkpoint_path;
  if (ckpt.empty() && !opt.journal_path.empty()) ckpt = opt.journal_path + ".ckpt";
  std::unique_ptr<Engine> engine =
      serve::recover_engine(ckpt, engine_kind, util::load_instance_file(path));
  // Process-default profiler: in SFCP_PROFILE builds the serve loop records
  // journal/apply/notify phases a REPL `profile` (or STATS frame) can read;
  // in default builds every scope compiles out and this is inert.
  prof::Profiler profiler;
  prof::ScopedProfiler prof_guard(profiler);
  serve::Server server(std::move(engine), opt);
  const serve::ServeStats st = server.stats();
  std::cout << "serving " << server.engine().size() << " nodes (engine="
            << server.engine().kind() << ") on " << opt.host << ":" << server.port();
  if (!opt.journal_path.empty()) {
    std::cout << " journal=" << opt.journal_path << " fsync="
              << serve::fsync_policy_name(opt.fsync) << " replayed="
              << st.recovered_records << (st.journal_tail_torn ? " (torn tail trimmed)" : "");
  }
  std::cout << std::endl;
  server.run();
  return 0;
}

void print_fleet_help() {
  std::cout
      << "usage: sfcp_cli fleet [options]\n"
         "Serves a fleet of instance-keyed engines behind one port: FLEET_EDIT/\n"
         "FLEET_VIEW frames route by instance id, instances materialize on first\n"
         "touch from a deterministic generator, and idle ones are checkpointed\n"
         "out of memory (warm/cold tiering).\n"
         "  --host <addr>             bind address (default 127.0.0.1)\n"
         "  --port <p>                TCP port (default 0 = ephemeral, printed at start)\n"
         "  --engine <kind>           per-instance engine (default 'incremental')\n"
         "  --instances <k>           valid instance ids are [0, k) (default 0 = any id)\n"
         "  --n <nodes>               nodes per generated instance (default 64)\n"
         "  --labels <k>              B-labels per generated instance (default 4)\n"
         "  --warm <k>                max warm (in-memory) instances (default 1024,\n"
         "                            0 = unbounded)\n"
         "  --warm-bytes <b>          max warm-set footprint in bytes (default 0 =\n"
         "                            unbounded); evicts least-recently-used first\n"
         "  --spill-dir <dir>         evict cold instances to <dir>/i<id>.ckpt instead\n"
         "                            of in-memory images; adopted back on restart\n"
         "  --journal <path>          write-ahead fleet edit journal (sfcp-fleet-journal\n"
         "                            v1); restart replays it per instance\n"
         "  --fsync always|epoch|off  journal durability (default 'epoch')\n"
         "  --seed <s>                generator seed (default 20260807)\n"
         "  --pool-threads <t>        worker-pool width for epoch applies: distinct\n"
         "                            instances in one epoch repair concurrently on\n"
         "                            lane slot%width (default -1 = auto from the\n"
         "                            session thread budget; 0/1 = never pool)\n";
}

int cmd_fleet(int argc, char** argv) {
  serve::ServerOptions opt;
  fleet::FleetConfig cfg;
  u64 instances = 0;
  std::size_t nodes = 64;
  u32 labels = 4;
  u64 seed = 20260807;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      print_fleet_help();
      return 0;
    } else if (arg == "--host" && i + 1 < argc) {
      opt.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      opt.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--engine" && i + 1 < argc) {
      cfg.engine = argv[++i];
    } else if (arg == "--instances" && i + 1 < argc) {
      instances = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--n" && i + 1 < argc) {
      nodes = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--labels" && i + 1 < argc) {
      labels = static_cast<u32>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--warm" && i + 1 < argc) {
      cfg.warm_limit = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--warm-bytes" && i + 1 < argc) {
      cfg.warm_bytes_limit = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--spill-dir" && i + 1 < argc) {
      cfg.spill_dir = argv[++i];
    } else if (arg == "--journal" && i + 1 < argc) {
      opt.journal_path = argv[++i];
    } else if (arg == "--fsync" && i + 1 < argc) {
      opt.fsync = serve::parse_fsync_policy(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--pool-threads" && i + 1 < argc) {
      opt.pool_threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::cerr << "unknown fleet option '" << arg << "' (try 'fleet --help')\n";
      return 2;
    }
  }
  if (!engines().find(cfg.engine)) {
    std::cerr << "unknown engine '" << cfg.engine << "' (see 'sfcp_cli engines')\n";
    return 2;
  }
  cfg.durable_spill = opt.fsync == serve::FsyncPolicy::Always;
  auto fleet_engine = std::make_unique<fleet::FleetEngine>(std::move(cfg));
  // Deterministic per-id generator: any instance id maps to the same graph
  // on every process, so a journal (or spill dir) replays against identical
  // instances after a restart.
  fleet_engine->set_factory([instances, nodes, labels, seed](fleet::InstanceId id) {
    if (instances != 0 && id >= instances) {
      throw std::runtime_error("instance id " + std::to_string(id) + " out of range [0, " +
                               std::to_string(instances) + ")");
    }
    util::Rng rng(seed ^ (id * 0x9e3779b97f4a7c15ull + 1));
    return util::random_function(nodes, labels, rng);
  });
  prof::Profiler profiler;
  prof::ScopedProfiler prof_guard(profiler);
  serve::Server server(std::move(fleet_engine), opt);
  const serve::ServeStats st = server.stats();
  std::cout << "serving fleet (engine=" << server.fleet().config().engine << ", "
            << nodes << " nodes/instance) on " << opt.host << ":" << server.port();
  if (instances != 0) std::cout << " instances=" << instances;
  if (!opt.journal_path.empty()) {
    std::cout << " journal=" << opt.journal_path << " fsync="
              << serve::fsync_policy_name(opt.fsync) << " replayed="
              << st.recovered_records << (st.journal_tail_torn ? " (torn tail trimmed)" : "");
  }
  std::cout << std::endl;
  server.run();
  return 0;
}

int cmd_connect(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string port_str = argv[0];
  if (argc > 1) {
    std::cerr << "usage: sfcp_cli connect [host:]port\n";
    return 2;
  }
  const std::size_t colon = port_str.rfind(':');
  if (colon != std::string::npos) {
    host = port_str.substr(0, colon);
    port_str = port_str.substr(colon + 1);
  }
  const unsigned long port = std::strtoul(port_str.c_str(), nullptr, 10);
  if (port == 0 || port > 65535) {
    std::cerr << "bad port '" << port_str << "'\n";
    return 2;
  }
  serve::Client client = serve::Client::connect(host, static_cast<std::uint16_t>(port));
  // STATS works in both server modes; a classic VIEW frame would be
  // rejected by a fleet server before we know which kind we dialed.
  u64 fleet_instances = 0;
  bool fleet_mode = false;
  for (const auto& [key, value] : client.stats()) {
    if (key == "fleet_instances") {
      fleet_mode = true;
      fleet_instances = value;
    }
  }
  if (fleet_mode) {
    std::cout << "connected to " << host << ":" << port << " — fleet server, "
              << fleet_instances
              << " instances ('instance <id>' to route, 'help' for commands)\n";
  } else {
    const serve::Client::ViewInfo v = client.view();
    std::cout << "connected to " << host << ":" << port << " — n=" << v.n
              << " classes=" << v.num_classes << " epoch=" << v.epoch
              << " ('help' for commands)\n";
  }
  std::string line;
  serve::ReplState repl_state;  // `instance <id>` fleet routing
  while (std::cout << "> " << std::flush, std::getline(std::cin, line)) {
    if (line == "help") {
      serve::print_serve_help(std::cout);
      continue;
    }
    const serve::ReplResult r =
        serve::run_serve_command(client, line, std::cout, {}, &repl_state);
    if (r == serve::ReplResult::Quit) break;
    if (r == serve::ReplResult::Unknown) {
      std::cout << "unknown command — try 'help'\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "--version" || cmd == "version") {
      std::cout << "sfcp_cli " << SFCP_VERSION << " (sfcp-wire v1, sfcp-checkpoint v1, "
                   "sfcp-journal v1)\n";
      return 0;
    }
    if (cmd == "--help" || cmd == "help") {
      std::cout << kUsage;
      return 0;
    }
    if (cmd == "strategies") return cmd_strategies();
    if (cmd == "engines") return cmd_engines();
    if (cmd == "fleet") return cmd_fleet(argc - 2, argv + 2);
    if (argc < 3) {
      std::cerr << kUsage;
      return 2;
    }
    if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
    if (cmd == "solve") {
      if (std::string(argv[2]) == "--help") {
        print_solve_help();
        return 0;
      }
      std::string strategy = "parallel";
      std::string engine = "batch";
      bool engine_set = false;
      int threads = 0;
      std::size_t shards = 0;  // 0 = engine default; > 0 selects "sharded"
      bool adaptive = false;
      bool policy_set = false;
      bool profile = false;
      double max_dirty_fraction = -1.0;  // < 0 = policy default
      for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help") {
          print_solve_help();
          return 0;
        } else if (arg == "--seq") {
          strategy = "sequential";  // backwards-compatible spelling
        } else if (arg == "--strategy" && i + 1 < argc) {
          strategy = argv[++i];
        } else if (arg == "--engine" && i + 1 < argc) {
          engine = argv[++i];
          engine_set = true;
        } else if (arg == "--threads" && i + 1 < argc) {
          threads = std::atoi(argv[++i]);
        } else if (arg == "--shards" && i + 1 < argc) {
          shards = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--policy" && i + 1 < argc) {
          const std::string mode = argv[++i];
          if (mode == "adaptive") {
            adaptive = true;
          } else if (mode == "static") {
            adaptive = false;
          } else {
            std::cerr << "--policy must be 'static' or 'adaptive' (got '" << mode << "')\n";
            return 2;
          }
          policy_set = true;
        } else if (arg == "--max-dirty-fraction" && i + 1 < argc) {
          max_dirty_fraction = std::strtod(argv[++i], nullptr);
          if (max_dirty_fraction < 0.0 || max_dirty_fraction > 1.0) {
            std::cerr << "--max-dirty-fraction must be in [0, 1]\n";
            return 2;
          }
          policy_set = true;
        } else if (arg == "--profile") {
          profile = true;
        } else {
          std::cerr << "unknown solve option '" << arg << "' (try 'solve --help')\n";
          return 2;
        }
      }
      // A bare --shards implies the sharded engine; combined with an
      // explicit different --engine it is a contradiction, not an override.
      if (shards > 0 && engine_set && engine != "sharded") {
        std::cerr << "--shards only applies to --engine sharded\n";
        return 2;
      }
      if (shards > 0) engine = "sharded";
      // Policies live in the repair/reshard engines; "batch" has none.
      if (policy_set && engine != "incremental" && engine != "sharded") {
        std::cerr << "--policy/--max-dirty-fraction need --engine incremental or sharded\n";
        return 2;
      }
      return cmd_solve(argv[2], strategy, threads, engine, shards, adaptive,
                       max_dirty_fraction, profile);
    }
    if (cmd == "classes") {
      const std::size_t top = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10;
      return cmd_classes(argv[2], top);
    }
    if (cmd == "verify") return cmd_verify(argv[2]);
    if (cmd == "stats") return cmd_stats(argv[2]);
    if (cmd == "dot") return cmd_dot(argv[2]);
    if (cmd == "serve") {
      if (std::string(argv[2]) == "--help") {
        print_serve_help();
        return 0;
      }
      return cmd_serve(argc - 2, argv + 2);
    }
    if (cmd == "connect") return cmd_connect(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command '" << cmd << "'\n" << kUsage;
  return 2;
}
