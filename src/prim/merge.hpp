#pragma once
// Parallel merging and merge sort — the library's stand-in for Cole's
// parallel mergesort [8], which the paper invokes in step 5 of Algorithm
// "sorting strings" to finish the O(n/log n)-size residue.
//
// `parallel_merge` splits the output into evenly sized chunks and locates
// each chunk boundary with a "merge path" diagonal binary search (the
// co-ranking technique): O(log(|a|+|b|)) per boundary, after which every
// worker merges its slice independently.  O(n) work, O(log n) depth with
// n/log n workers — the same work/depth profile Cole's algorithm provides,
// which is all the paper relies on.
//
// `parallel_merge_sort` builds sorted runs bottom-up and merges them
// level-synchronously, ping-ponging between the input and one buffer: each
// width-doubling level is ONE parallel round (p blocks of the output, each
// block walking the run pairs it overlaps via merge-path co-ranking — the
// blocked p-way structure of omp_par::merge_sort), not one fork-join per
// pair.  O(n log n) work, O(log^2 n) depth (vs Cole's O(log n); the
// difference is immaterial on a fixed-core host and is recorded in
// DESIGN.md).  On a serving session with a pram::WorkerPool installed the
// per-level rounds dispatch to the persistent workers.
//
// Both are stable: ties prefer elements of `a` (merge) / earlier input
// positions (sort).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "pram/parallel_for.hpp"
#include "pram/types.hpp"

namespace sfcp::prim {

/// Returns the "co-rank" split (ia, ib) with ia + ib == k such that merging
/// a[0..ia) with b[0..ib) yields the first k output elements of the stable
/// merge of a and b.  Binary search on the merge-path diagonal.
template <typename T, typename Cmp = std::less<T>>
std::pair<std::size_t, std::size_t> merge_path_split(std::span<const T> a, std::span<const T> b,
                                                     std::size_t k, Cmp cmp = Cmp{}) {
  // ia in [max(0, k-|b|), min(k, |a|)]; invariant of the stable merge split:
  //   a[ia-1] <= b[ib]   (every taken a precedes every untaken b; a wins ties)
  //   b[ib-1] <  a[ia]   (every taken b strictly precedes every untaken a)
  std::size_t lo = k > b.size() ? k - b.size() : 0;
  std::size_t hi = std::min(k, a.size());
  while (true) {
    const std::size_t ia = lo + (hi - lo) / 2;
    const std::size_t ib = k - ia;
    if (ia > 0 && ib < b.size() && cmp(b[ib], a[ia - 1])) {
      // a[ia-1] > b[ib]: too many taken from a.
      hi = ia - 1;
    } else if (ib > 0 && ia < a.size() && !cmp(b[ib - 1], a[ia])) {
      // b[ib-1] >= a[ia]: too many taken from b (a must win the tie).
      lo = ia + 1;
    } else {
      return {ia, ib};
    }
  }
}

/// Stable parallel merge of sorted ranges `a` and `b` into `out`
/// (out.size() must equal a.size() + b.size(); out must not alias inputs).
template <typename T, typename Cmp = std::less<T>>
void parallel_merge(std::span<const T> a, std::span<const T> b, std::span<T> out,
                    Cmp cmp = Cmp{}) {
  const std::size_t n = a.size() + b.size();
  if (n == 0) return;
  const int nb = pram::num_blocks(n);
  if (nb == 1) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), cmp);
    pram::charge(n);
    return;
  }
  pram::parallel_blocks(n, [&](int /*blk*/, std::size_t lo, std::size_t hi) {
    const auto [alo, blo] = merge_path_split(a, b, lo, cmp);
    const auto [ahi, bhi] = merge_path_split(a, b, hi, cmp);
    std::merge(a.begin() + alo, a.begin() + ahi, b.begin() + blo, b.begin() + bhi,
               out.begin() + lo, cmp);
  });
}

/// Stable parallel merge sort (bottom-up, ping-pong buffer).
template <typename T, typename Cmp = std::less<T>>
void parallel_merge_sort(std::span<T> data, Cmp cmp = Cmp{}) {
  const std::size_t n = data.size();
  if (n < 2) return;
  // Base runs: sequential stable sort of grain-sized chunks, in parallel.
  const std::size_t base = std::max<std::size_t>(pram::grain(), 32);
  const std::size_t num_runs = (n + base - 1) / base;
  pram::parallel_for(0, num_runs, [&](std::size_t r) {
    const std::size_t lo = r * base;
    const std::size_t hi = std::min(n, lo + base);
    std::stable_sort(data.begin() + lo, data.begin() + hi, cmp);
  });
  if (num_runs == 1) return;

  std::vector<T> buf(n);
  std::span<T> src = data;
  std::span<T> dst(buf);
  for (std::size_t width = base; width < n; width *= 2) {
    // One round per level: every block owns a contiguous slice of the
    // level's OUTPUT and walks the run pairs it overlaps, co-ranking its
    // entry into each pair with merge_path_split.  A pair wholly inside a
    // block is a plain std::merge; a pair spanning blocks is split at the
    // block boundary (each side merges its half independently).
    pram::parallel_blocks(n, [&](int /*blk*/, std::size_t lo, std::size_t hi) {
      std::size_t pos = lo;
      while (pos < hi) {
        const std::size_t pair_lo = pos - pos % (2 * width);
        const std::size_t mid = std::min(n, pair_lo + width);
        const std::size_t pair_hi = std::min(n, pair_lo + 2 * width);
        std::span<const T> a(src.data() + pair_lo, mid - pair_lo);
        std::span<const T> b(src.data() + mid, pair_hi - mid);
        const std::size_t out_hi = std::min(hi, pair_hi);
        const auto [alo, blo] = merge_path_split(a, b, pos - pair_lo, cmp);
        const auto [ahi, bhi] = merge_path_split(a, b, out_hi - pair_lo, cmp);
        std::merge(a.begin() + static_cast<std::ptrdiff_t>(alo),
                   a.begin() + static_cast<std::ptrdiff_t>(ahi),
                   b.begin() + static_cast<std::ptrdiff_t>(blo),
                   b.begin() + static_cast<std::ptrdiff_t>(bhi),
                   dst.begin() + static_cast<std::ptrdiff_t>(pos), cmp);
        pos = out_hi;
      }
    });
    std::swap(src, dst);
  }
  if (src.data() != data.data()) {
    pram::parallel_for(0, n, [&](std::size_t i) { data[i] = std::move(src[i]); });
  }
}

// Convenience non-template entry points (defined in merge.cpp).
void parallel_merge_u32(std::span<const u32> a, std::span<const u32> b, std::span<u32> out);
void parallel_merge_sort_u32(std::span<u32> data);
void parallel_merge_sort_u64(std::span<u64> data);

}  // namespace sfcp::prim
