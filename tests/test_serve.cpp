// serve/: wire-protocol codecs, the epoch-batched TCP server, the blocking
// client, journal durability and change notifications — all over real
// loopback sockets (ephemeral ports, one event-loop thread per fixture).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "engine.hpp"
#include "serve/client.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

// ---- protocol codecs -----------------------------------------------------

TEST(ServeProtocol, EditRequestRoundTrip) {
  const std::vector<inc::Edit> edits = {inc::Edit::set_f(3, 9), inc::Edit::set_b(0, 123456),
                                        inc::Edit::set_b(4294967295u, 0)};
  EXPECT_EQ(serve::decode_edit_request(serve::encode_edit_request(edits)), edits);
  EXPECT_TRUE(serve::decode_edit_request(serve::encode_edit_request({})).empty());
}

TEST(ServeProtocol, EditRequestRejectsLengthMismatch) {
  const std::vector<inc::Edit> one = {inc::Edit::set_b(1, 2)};
  std::string payload = serve::encode_edit_request(one);
  payload.push_back('\0');  // trailing garbage: count no longer matches size
  EXPECT_THROW(serve::decode_edit_request(payload), std::runtime_error);
  EXPECT_THROW(serve::decode_edit_request(std::string_view(payload).substr(0, 3)),
               std::runtime_error);
}

TEST(ServeProtocol, NotifyRoundTrip) {
  const std::vector<u32> classes = {1, 5, 9};
  const serve::Notification n = serve::decode_notify(serve::encode_notify(42, false, classes));
  EXPECT_EQ(n.epoch, 42u);
  EXPECT_FALSE(n.full);
  EXPECT_EQ(n.classes, classes);

  const serve::Notification full = serve::decode_notify(serve::encode_notify(7, true, {}));
  EXPECT_TRUE(full.full);
  EXPECT_TRUE(full.classes.empty());
}

TEST(ServeProtocol, ErrorRoundTrip) {
  EXPECT_EQ(serve::decode_error(serve::encode_error("node 7 out of range")),
            "node 7 out of range");
}

TEST(ServeProtocol, FrameSplitterReassemblesByteByByte) {
  const std::vector<inc::Edit> one = {inc::Edit::set_b(1, 2)};
  std::string stream;
  serve::append_magic(stream);
  serve::append_frame(stream, serve::FrameType::kView, "");
  serve::append_frame(stream, serve::FrameType::kEdit, serve::encode_edit_request(one));

  serve::FrameSplitter split;
  std::vector<serve::Frame> frames;
  for (char byte : stream) {  // worst-case fragmentation: one byte per read
    split.feed(&byte, 1);
    while (auto f = split.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, serve::FrameType::kView);
  EXPECT_EQ(frames[1].type, serve::FrameType::kEdit);
  EXPECT_EQ(serve::decode_edit_request(frames[1].payload),
            (std::vector<inc::Edit>{inc::Edit::set_b(1, 2)}));
  EXPECT_TRUE(split.handshaken());
}

TEST(ServeProtocol, FrameSplitterRejectsForeignMagic) {
  serve::FrameSplitter split;
  const std::string bad = "GET / HTTP/1.1\r\n";
  split.feed(bad.data(), bad.size());
  EXPECT_THROW(split.next(), std::runtime_error);
}

// ---- server/client over loopback -----------------------------------------

/// One server on an ephemeral loopback port with its event loop on a
/// background thread, plus a helper to mint connected clients.
class LoopbackServer {
 public:
  explicit LoopbackServer(std::unique_ptr<Engine> engine, serve::ServerOptions opt = {}) {
    server_ = std::make_unique<serve::Server>(std::move(engine), std::move(opt));
    loop_ = std::thread([s = server_.get()] { s->run(); });
  }
  ~LoopbackServer() { shutdown(); }

  void shutdown() {
    if (server_) {
      server_->stop();
      loop_.join();
      server_.reset();
    }
  }

  serve::Client connect() { return serve::Client::connect("127.0.0.1", server_->port()); }
  std::uint16_t port() const { return server_->port(); }
  /// Only meaningful once the loop thread has been shut down.
  serve::Server& server() { return *server_; }

 private:
  std::unique_ptr<serve::Server> server_;
  std::thread loop_;
};

graph::Instance test_instance(std::size_t n = 600, u64 seed = 501) {
  util::Rng rng(seed);
  return util::random_function(n, 4, rng);
}

std::map<std::string, u64> stat_map(serve::Client& client) {
  std::map<std::string, u64> m;
  for (auto& [k, v] : client.stats()) m[k] = v;
  return m;
}

// C++20 std::span does not bind to a braced list; funnel literals through a
// vector.
u64 apply_edits(serve::Client& client, std::vector<inc::Edit> edits) {
  return client.apply(edits);
}

TEST(ServeServer, ServesViewsQueriesAndLabels) {
  const graph::Instance inst = test_instance();
  LoopbackServer srv(engines().make("incremental", inst));
  serve::Client client = srv.connect();

  const serve::Client::ViewInfo v0 = client.view();
  EXPECT_EQ(v0.epoch, 0u);
  EXPECT_EQ(v0.n, inst.size());

  // Mutate over the wire, then compare every read surface against a fresh
  // solve on the identically mutated instance.
  graph::Instance reference = inst;
  const std::vector<inc::Edit> edits = {inc::Edit::set_b(17, 999), inc::Edit::set_f(3, 3),
                                        inc::Edit::set_b(0, 1)};
  for (const inc::Edit& e : edits) inc::apply_raw(e, reference.f, reference.b);
  const u64 epoch = client.apply(edits);
  EXPECT_GE(epoch, 1u);

  const core::Result want = core::solve(reference);
  const serve::Client::Labels got = client.labels();
  EXPECT_EQ(got.epoch, epoch);
  EXPECT_EQ(got.num_classes, want.num_blocks);
  EXPECT_EQ(got.labels, want.q);

  for (u32 x : {0u, 3u, 17u, 599u}) {
    EXPECT_EQ(client.class_of(x), want.q[x]) << "x=" << x;
  }
  const u32 c17 = client.class_of(17);
  const std::vector<u32> members = client.members(c17);
  EXPECT_TRUE(std::find(members.begin(), members.end(), 17u) != members.end());
  for (u32 x : members) EXPECT_EQ(want.q[x], want.q[17]);
}

TEST(ServeServer, EmptyEditBatchAcksCurrentEpoch) {
  LoopbackServer srv(engines().make("incremental", test_instance(100)));
  serve::Client client = srv.connect();
  const u64 e1 = client.apply({});
  EXPECT_EQ(e1, 0u);
  apply_edits(client, {inc::Edit::set_b(1, 77)});
  EXPECT_EQ(client.apply({}), client.view().epoch);
}

TEST(ServeServer, InvalidEditsAreRejectedWholeFrameAndNotJournaled) {
  const std::string dir = ::testing::TempDir() + "serve_reject";
  std::filesystem::create_directories(dir);
  serve::ServerOptions opt;
  opt.journal_path = dir + "/wal";
  LoopbackServer srv(engines().make("incremental", test_instance(100)), opt);
  serve::Client client = srv.connect();

  // Node out of range: the whole frame (good edit included) must bounce.
  const std::vector<inc::Edit> bad = {inc::Edit::set_b(1, 5), inc::Edit::set_b(100, 5)};
  EXPECT_THROW(client.apply(bad), std::runtime_error);
  EXPECT_THROW(apply_edits(client, {inc::Edit::set_f(2, 100)}), std::runtime_error);

  // The connection survives, the epoch did not move, nothing was journaled.
  EXPECT_EQ(client.view().epoch, 0u);
  const auto stats = stat_map(client);
  EXPECT_EQ(stats.at("edit_frames_rejected"), 2u);
  EXPECT_EQ(stats.at("edits_accepted"), 0u);
  EXPECT_EQ(stats.at("journal_records"), 0u);

  EXPECT_EQ(apply_edits(client, {inc::Edit::set_b(1, 5)}), 1u);
  EXPECT_EQ(stat_map(client).at("journal_records"), 1u);
  std::filesystem::remove_all(dir);
}

TEST(ServeServer, NotifiesChangedClassesOnly) {
  const graph::Instance inst = test_instance();
  LoopbackServer srv(engines().make("incremental", inst));
  serve::Client client = srv.connect();
  client.subscribe();

  // A b-relabel of one node dirties a bounded region: the notification must
  // be a non-full delta whose classes include the edited node's new class.
  const u64 epoch = apply_edits(client, {inc::Edit::set_b(17, 424242)});
  const auto n = client.next_notification(5000);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->epoch, epoch);
  EXPECT_FALSE(n->full);
  ASSERT_FALSE(n->classes.empty());
  const u32 c17 = client.class_of(17);
  EXPECT_TRUE(std::find(n->classes.begin(), n->classes.end(), c17) != n->classes.end());
  EXPECT_TRUE(std::is_sorted(n->classes.begin(), n->classes.end()));

  // No second notification is owed.
  EXPECT_FALSE(client.next_notification(0).has_value());
}

TEST(ServeServer, BatchEngineDowngradesNotificationsToFull) {
  LoopbackServer srv(engines().make("batch", test_instance(200)));
  serve::Client client = srv.connect();
  client.subscribe();
  const u64 epoch = apply_edits(client, {inc::Edit::set_b(5, 77)});
  const auto n = client.next_notification(5000);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->epoch, epoch);
  EXPECT_TRUE(n->full);  // a re-solving engine cannot name changed classes
  EXPECT_TRUE(n->classes.empty());
}

TEST(ServeServer, MultipleSubscribersAllNotified) {
  LoopbackServer srv(engines().make("incremental", test_instance()));
  serve::Client a = srv.connect();
  serve::Client b = srv.connect();
  serve::Client editor = srv.connect();
  a.subscribe();
  b.subscribe();

  const u64 epoch = apply_edits(editor, {inc::Edit::set_b(42, 4242)});
  for (serve::Client* c : {&a, &b}) {
    const auto n = c->next_notification(5000);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(n->epoch, epoch);
  }
  // The editor did not subscribe and gets nothing.
  EXPECT_FALSE(editor.next_notification(0).has_value());
  // All three observe the same labels.
  EXPECT_EQ(a.labels().labels, editor.labels().labels);
  EXPECT_EQ(b.labels().labels, editor.labels().labels);
}

TEST(ServeServer, EpochBatchingCoalescesPipelinedEdits) {
  LoopbackServer srv(engines().make("incremental", test_instance()));
  serve::Client client = srv.connect();
  // Fire several EDIT frames without collecting acks: the server accepts
  // them within one loop iteration and lands them in few epoch flushes.
  const int kFrames = 50;
  for (int i = 0; i < kFrames; ++i) {
    const inc::Edit e = inc::Edit::set_b(static_cast<u32>(i), 90000u + static_cast<u32>(i));
    client.send_edits({&e, 1});
  }
  u64 last = 0;
  for (int i = 0; i < kFrames; ++i) {
    const u64 e = client.await_edited();
    EXPECT_GE(e, last);  // acks arrive in order, epochs monotone
    last = e;
  }
  const auto stats = stat_map(client);
  EXPECT_EQ(stats.at("edits_accepted"), static_cast<u64>(kFrames));
  EXPECT_LE(stats.at("epochs_flushed"), static_cast<u64>(kFrames));
  EXPECT_EQ(client.view().epoch, last);
}

TEST(ServeServer, EditsPipelinedBeforeCloseStillLand) {
  const graph::Instance inst = test_instance(200, 17);
  LoopbackServer srv(engines().make("incremental", inst));
  const std::vector<inc::Edit> edits = {inc::Edit::set_b(3, 111), inc::Edit::set_f(4, 5)};

  // Fire-and-close over a raw socket: complete the handshake (drain the
  // server's magic, so our close is an orderly FIN rather than an RST that
  // may destroy in-flight data), pipeline an EDIT frame and close straight
  // away.  The frame and the FIN can arrive in the same readiness event, and
  // buffered frames must be applied before the EOF is honored — otherwise
  // the edits vanish silently.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(srv.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)), 0);
    char magic[8];
    std::size_t got = 0;
    while (got < sizeof(magic)) {
      const ssize_t n = ::read(fd, magic + got, sizeof(magic) - got);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    std::string stream;
    serve::append_magic(stream);
    serve::append_frame(stream, serve::FrameType::kEdit, serve::encode_edit_request(edits));
    ASSERT_EQ(::write(fd, stream.data(), stream.size()),
              static_cast<ssize_t>(stream.size()));
    ::close(fd);  // no unread data left: an orderly shutdown, not an abort
  }

  graph::Instance reference = inst;
  for (const inc::Edit& e : edits) inc::apply_raw(e, reference.f, reference.b);
  const core::Result want = core::solve(reference);

  serve::Client reader = srv.connect();
  u64 epoch = reader.view().epoch;
  for (int i = 0; i < 2500 && epoch == 0; ++i) {  // burst bytes race our connect
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    epoch = reader.view().epoch;
  }
  EXPECT_GE(epoch, 1u);
  EXPECT_EQ(reader.labels().labels, want.q);
}

// A child process drives the server's journal into a real mid-record write
// failure (RLIMIT_FSIZE: the kernel cuts a write short, then fails with
// EFBIG).  Edits must be refused server-wide from then on — an acked edit
// must never outrun the log — while reads keep working, and the journal on
// disk must still end at a record boundary.
TEST(ServeServer, JournalFailureDisablesEditsButServesReads) {
  const std::string dir = ::testing::TempDir() + "serve_journal_fail";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/wal";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::signal(SIGXFSZ, SIG_IGN);  // surface the limit as EFBIG, not a signal
    struct rlimit lim {128, 128};
    if (::setrlimit(RLIMIT_FSIZE, &lim) != 0) _exit(10);
    try {
      serve::ServerOptions opt;
      opt.journal_path = journal;
      opt.fsync = serve::FsyncPolicy::Off;
      serve::Server server(engines().make("incremental", test_instance(100)), opt);
      std::thread loop([&server] { server.run(); });
      serve::Client client = serve::Client::connect("127.0.0.1", server.port());

      bool failed = false;
      for (int i = 0; i < 32 && !failed; ++i) {
        try {
          apply_edits(client, {inc::Edit::set_b(1, 1000u + static_cast<u32>(i))});
        } catch (const std::exception&) {
          failed = true;
        }
      }
      int code = 0;
      const u64 epoch_after_fail = client.view().epoch;  // reads still served
      if (!failed) {
        code = 11;  // the 128-byte limit never fired
      } else {
        try {
          apply_edits(client, {inc::Edit::set_b(2, 9)});
          code = 12;  // edit accepted after journal failure
        } catch (const std::exception&) {
        }
      }
      if (code == 0 && client.view().epoch != epoch_after_fail) code = 13;
      if (code == 0) {
        const auto stats = client.stats();
        bool flagged = false;
        for (const auto& [k, v] : stats) {
          if (k == "journal_failed") flagged = v == 1;
        }
        if (!flagged) code = 14;
      }
      server.stop();
      loop.join();
      _exit(code);
    } catch (...) {
      _exit(15);
    }
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The rolled-back partial record left a cleanly scannable log.
  std::ifstream is(journal, std::ios::binary);
  ASSERT_TRUE(is.good());
  const util::JournalScan scan = util::scan_journal(is);
  EXPECT_FALSE(scan.torn) << scan.error;
  EXPECT_GT(scan.records.size(), 0u);
  EXPECT_EQ(scan.valid_bytes, std::filesystem::file_size(journal));
  std::filesystem::remove_all(dir);
}

TEST(ServeServer, HandshakeRejectsForeignPeer) {
  LoopbackServer srv(engines().make("incremental", test_instance(50)));
  // A well-behaved client must keep working while a garbage peer is dropped.
  serve::Client good = srv.connect();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string garbage = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  // The server answers with its magic (+ maybe an Error frame), then closes.
  char buf[256];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
  }
  EXPECT_EQ(n, 0) << "server should close a non-sfcp-wire peer";
  ::close(fd);

  EXPECT_EQ(good.view().n, 50u);
}

TEST(ServeServer, CheckpointOverWireResetsJournalAndRestores) {
  const std::string dir = ::testing::TempDir() + "serve_ckpt";
  std::filesystem::create_directories(dir);
  const graph::Instance inst = test_instance(300, 777);
  serve::ServerOptions opt;
  opt.journal_path = dir + "/wal";

  std::vector<u32> want_labels;
  u64 want_epoch = 0;
  {
    LoopbackServer srv(engines().make("incremental", inst), opt);
    serve::Client client = srv.connect();
    apply_edits(client, {inc::Edit::set_b(1, 71), inc::Edit::set_f(2, 9)});
    EXPECT_GT(stat_map(client).at("journal_bytes"), 8u);

    want_epoch = client.checkpoint();  // server-side atomic write + journal reset
    EXPECT_EQ(stat_map(client).at("journal_bytes"), 8u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/wal.ckpt"));

    // More edits after the checkpoint land in the (reset) journal.
    want_epoch = apply_edits(client, {inc::Edit::set_b(5, 55)});
    want_labels = client.labels().labels;
  }

  // Cold restart: checkpoint restores the warm engine, the server replays
  // the post-checkpoint journal tail.
  std::unique_ptr<Engine> engine = serve::recover_engine(dir + "/wal.ckpt", "incremental",
                                                         graph::Instance(inst));
  serve::Server server(std::move(engine), opt);
  EXPECT_EQ(server.stats().recovered_records, 1u);
  EXPECT_EQ(server.engine().epoch(), want_epoch);
  const core::PartitionView v = server.engine().view();
  const std::span<const u32> labels = v.labels();
  EXPECT_TRUE(std::equal(labels.begin(), labels.end(), want_labels.begin(),
                         want_labels.end()));
  std::filesystem::remove_all(dir);
}

TEST(ServeServer, ShardedEngineServesAndNotifies) {
  LoopbackServer srv(engines().make("sharded", test_instance(800, 99)));
  serve::Client client = srv.connect();
  client.subscribe();
  const u64 epoch = apply_edits(client, {inc::Edit::set_b(10, 1234)});
  const auto n = client.next_notification(5000);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->epoch, epoch);
  const auto stats = stat_map(client);
  EXPECT_GT(stats.at("shards"), 0u);
}

TEST(ServeServer, StatsExportsServingCounters) {
  LoopbackServer srv(engines().make("incremental", test_instance(100)));
  serve::Client client = srv.connect();
  apply_edits(client, {inc::Edit::set_b(1, 2)});
  const auto stats = stat_map(client);
  for (const char* key :
       {"epoch", "n", "num_classes", "connections_open", "frames_served", "edits_accepted",
        "epochs_flushed", "engine_edits", "journal_records", "recovered_records"}) {
    EXPECT_TRUE(stats.count(key)) << "missing stats key " << key;
  }
  EXPECT_EQ(stats.at("epoch"), 1u);
  EXPECT_EQ(stats.at("n"), 100u);
  EXPECT_EQ(stats.at("connections_open"), 1u);
}

// ---- serve::Journal ------------------------------------------------------

TEST(ServeJournal, FreshFileGetsHeaderAndAppendsAccumulate) {
  const std::string path = ::testing::TempDir() + "serve_journal_fresh.wal";
  std::remove(path.c_str());
  {
    serve::Journal j(path, serve::FsyncPolicy::Always);
    EXPECT_FALSE(j.tail_was_torn());
    EXPECT_TRUE(j.recovered().empty());
    EXPECT_EQ(j.bytes(), 8u);
    j.append({0, {inc::Edit::set_b(1, 2)}});
    j.append({1, {inc::Edit::set_f(3, 4)}});
    EXPECT_EQ(j.appended_records(), 2u);
    EXPECT_GE(j.fsyncs(), 2u);
  }
  serve::Journal reopened(path, serve::FsyncPolicy::Off);
  EXPECT_FALSE(reopened.tail_was_torn());
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.recovered()[1].epoch, 1u);
  std::remove(path.c_str());
}

TEST(ServeJournal, TornTailIsTruncatedInPlaceOnOpen) {
  const std::string path = ::testing::TempDir() + "serve_journal_torn.wal";
  std::remove(path.c_str());
  u64 good_bytes = 0;
  {
    serve::Journal j(path, serve::FsyncPolicy::Off);
    j.append({0, {inc::Edit::set_b(1, 2)}});
    good_bytes = j.bytes();
  }
  {
    // Crash mid-append: half a record lands after the good prefix.
    std::ofstream os(path, std::ios::binary | std::ios::app);
    const std::string rec = util::encode_journal_record({1, {inc::Edit::set_f(5, 6)}});
    os.write(rec.data(), static_cast<std::streamsize>(rec.size() / 2));
  }
  serve::Journal reopened(path, serve::FsyncPolicy::Off);
  EXPECT_TRUE(reopened.tail_was_torn());
  EXPECT_NE(reopened.tear_error().find("byte offset " + std::to_string(good_bytes)),
            std::string::npos)
      << reopened.tear_error();
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.bytes(), good_bytes);
  EXPECT_EQ(std::filesystem::file_size(path), good_bytes);  // tail physically gone
  std::remove(path.c_str());
}

TEST(ServeJournal, FailedAppendRollsBackPartialRecord) {
  const std::string path = ::testing::TempDir() + "serve_journal_efbig.wal";
  std::remove(path.c_str());

  // A child hits a genuine mid-record write failure (RLIMIT_FSIZE cuts one
  // write short, the next fails with EFBIG) and exits with the number of
  // appends that fully succeeded.  The rollback in Journal::append must
  // leave the file ending exactly at that record boundary.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::signal(SIGXFSZ, SIG_IGN);
    struct rlimit lim {256, 256};
    if (::setrlimit(RLIMIT_FSIZE, &lim) != 0) _exit(120);
    int ok = 0;
    try {
      serve::Journal j(path, serve::FsyncPolicy::Always);
      for (int i = 0; i < 64; ++i) {
        j.append({static_cast<u64>(i), {inc::Edit::set_b(1, static_cast<u32>(i))}});
        ++ok;
      }
      _exit(121);  // the limit must have fired within 64 records
    } catch (const std::exception&) {
      _exit(ok);
    }
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  const int ok = WEXITSTATUS(status);
  ASSERT_LT(ok, 120) << "child setup failed (code " << ok << ")";
  ASSERT_GT(ok, 0);

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  const util::JournalScan scan = util::scan_journal(is);
  EXPECT_FALSE(scan.torn) << scan.error;
  EXPECT_EQ(scan.records.size(), static_cast<std::size_t>(ok));
  EXPECT_EQ(scan.valid_bytes, std::filesystem::file_size(path));
  std::remove(path.c_str());
}

TEST(ServeJournal, ReplaySkipsRecordsTheCheckpointAbsorbed) {
  const std::string path = ::testing::TempDir() + "serve_journal_replay.wal";
  std::remove(path.c_str());
  const graph::Instance inst = test_instance(80, 31);
  {
    serve::Journal j(path, serve::FsyncPolicy::Off);
    j.append({0, {inc::Edit::set_b(1, 100)}});  // pre-checkpoint (epoch 0 -> 1)
    j.append({1, {inc::Edit::set_b(2, 200)}});  // post-checkpoint
  }
  // An engine already at epoch 1 (as if restored from a checkpoint taken
  // after the first record) must replay only the second record.
  std::unique_ptr<Engine> engine = engines().make("incremental", graph::Instance(inst));
  engine->set_b(1, 100);
  ASSERT_EQ(engine->epoch(), 1u);
  serve::Journal j(path, serve::FsyncPolicy::Off);
  u64 skipped = 0;
  EXPECT_EQ(j.replay(*engine, &skipped), 1u);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(engine->epoch(), 2u);

  graph::Instance reference = inst;
  reference.b[1] = 100;
  reference.b[2] = 200;
  const core::Result want = core::solve(reference);
  const core::PartitionView v = engine->view();
  const std::span<const u32> labels = v.labels();
  EXPECT_TRUE(std::equal(labels.begin(), labels.end(), want.q.begin(), want.q.end()));
  std::remove(path.c_str());
}

TEST(ServeJournal, FsyncPolicyNamesRoundTrip) {
  for (const auto policy : {serve::FsyncPolicy::Always, serve::FsyncPolicy::Epoch,
                            serve::FsyncPolicy::Off}) {
    EXPECT_EQ(serve::parse_fsync_policy(serve::fsync_policy_name(policy)), policy);
  }
  EXPECT_THROW(serve::parse_fsync_policy("sometimes"), std::invalid_argument);
}

}  // namespace
}  // namespace sfcp
