// Concurrency stress tests for the CRCW write primitives and the
// concurrent hash table — the substrate that realizes the paper's
// "arbitrary CRCW PRAM" semantics (and the BB table of Algorithm
// partition) on real threads.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "pram/crcw.hpp"
#include "prim/hash_table.hpp"
#include "util/random.hpp"

namespace sfcp {
namespace {

TEST(Crcw, ArbitraryWriteExactlyOneWinner) {
  // Many threads race on one cell; all must observe the SAME winner, and
  // the winner must be one of the written values.
  for (int round = 0; round < 20; ++round) {
    std::atomic<u32> cell{pram::kEmptyCell<u32>};
    const int writers = 8;
    std::vector<u32> observed(writers);
    std::vector<std::thread> threads;
    for (int t = 0; t < writers; ++t) {
      threads.emplace_back([&, t] {
        observed[t] = pram::arbitrary_write(cell, static_cast<u32>(100 + t));
      });
    }
    for (auto& th : threads) th.join();
    const u32 final = cell.load();
    EXPECT_GE(final, 100u);
    EXPECT_LT(final, 100u + writers);
    for (int t = 0; t < writers; ++t) {
      EXPECT_EQ(observed[t], final) << "every writer must read back the winner";
    }
  }
}

TEST(Crcw, ArbitraryWriteDistinctCellsAllSucceed) {
  const std::size_t n = 1000;
  std::vector<std::atomic<u32>> cells(n);
  for (auto& c : cells) c.store(pram::kEmptyCell<u32>);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < n; i += 4) {
        pram::arbitrary_write(cells[i], static_cast<u32>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(cells[i].load(), i);
}

TEST(Crcw, MinWriteConvergesToMinimum) {
  for (int round = 0; round < 10; ++round) {
    std::atomic<u32> cell{kNone};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        util::Rng rng(static_cast<u32>(round * 8 + t));
        for (int i = 0; i < 1000; ++i) {
          pram::min_write(cell, static_cast<u32>(5 + rng.below(10000)));
        }
        pram::min_write(cell, static_cast<u32>(5 + t));
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(cell.load(), 5u);
  }
}

TEST(Crcw, CommonWriteAgreedValue) {
  std::atomic<u32> cell{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) pram::common_write(cell, 42u);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cell.load(), 42u);
}

TEST(ConcurrentPairMap, SameKeySameLabelUnderContention) {
  // All threads hammer the same small key set; a key must map to exactly
  // one label across all threads (the BB-table invariant of §3.2).
  const std::size_t n = 1 << 14;
  prim::ConcurrentPairMap table(n);
  const int writers = 8;
  const u32 distinct = 64;
  std::vector<std::vector<u32>> got(writers, std::vector<u32>(n));
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(777 + static_cast<u32>(t));
      for (std::size_t i = 0; i < n; ++i) {
        const u64 key = pack_pair(rng.below(distinct), 0);
        got[t][i] = table.insert_or_get(key, static_cast<u32>(t * n + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Re-query sequentially: every key's label must be stable.
  std::set<u32> labels;
  for (u32 k = 0; k < distinct; ++k) {
    const u32 l1 = table.insert_or_get(pack_pair(k, 0), kNone - 1);
    const u32 l2 = table.insert_or_get(pack_pair(k, 0), kNone - 2);
    EXPECT_EQ(l1, l2);
    labels.insert(l1);
  }
  EXPECT_EQ(labels.size(), distinct) << "distinct keys must get distinct labels";
}

TEST(ConcurrentPairMap, DistinctKeysDistinctLabelsParallel) {
  const std::size_t n = 1 << 15;
  prim::ConcurrentPairMap table(n);
  std::vector<u32> label(n);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < n; i += 4) {
        label[i] = table.insert_or_get(pack_pair(static_cast<u32>(i), static_cast<u32>(i)),
                                       static_cast<u32>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<u32> seen(label.begin(), label.end());
  EXPECT_EQ(seen.size(), n);
}

}  // namespace
}  // namespace sfcp
